"""Dish archetypes and cuisine profiles for the WorldKitchen generator.

A *dish archetype* is a latent recipe template: a set of core ingredients
that strongly co-occur (flour + butter + sugar + egg in baked goods) plus
category multipliers shaping the rest of the draw.  A *cuisine profile*
mixes archetypes with region-specific weights and category emphasis, and
carries the region's signature (Table I overrepresented) boosts.

Archetype cores only reference lexicon names listed in
``repro.lexicon._seed_data.PROTECTED_NAMES`` so they survive lexicon
trimming; :func:`validate_archetypes` enforces this against a concrete
lexicon and is exercised by the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.regions import ALL_REGION_CODES
from repro.errors import SynthesisError
from repro.lexicon.lexicon import Lexicon

__all__ = [
    "DishArchetype",
    "CuisineProfile",
    "ARCHETYPES",
    "REGION_PROFILES",
    "validate_archetypes",
]


@dataclass(frozen=True)
class DishArchetype:
    """A latent recipe template.

    Attributes:
        key: Stable identifier.
        title: Human-readable template used for generated recipe titles.
        core: ``(ingredient name, popularity boost)`` pairs; boosts
            multiply the cuisine's base popularity inside this archetype,
            creating the co-occurring cores behind Fig. 3's frequent
            combinations.
        category_multipliers: ``(category value, multiplier)`` pairs
            reshaping the non-core part of the draw.
        size_shift: Added to the cuisine's mean recipe size when drawing
            sizes for this archetype.
    """

    key: str
    title: str
    core: tuple[tuple[str, float], ...]
    category_multipliers: tuple[tuple[str, float], ...] = ()
    size_shift: float = 0.0


@dataclass(frozen=True)
class CuisineProfile:
    """Generator profile for one region.

    Attributes:
        region_code: Table I region code.
        archetype_weights: ``(archetype key, weight)`` mixing proportions.
        category_emphasis: ``(category value, multiplier)`` pairs; applied
            both to vocabulary selection and to base popularity, producing
            the Fig. 2 category-usage signatures.
        signature_boost: Popularity multiplier for the region's Table I
            overrepresented ingredients.
        zipf_exponent: Exponent of the base popularity distribution.
        size_mean: Mean recipe size for this cuisine.
        size_sigma: Recipe size standard deviation.
    """

    region_code: str
    archetype_weights: tuple[tuple[str, float], ...]
    category_emphasis: tuple[tuple[str, float], ...] = ()
    signature_boost: float = 6.0
    zipf_exponent: float = 0.9
    size_mean: float = 9.0
    size_sigma: float = 3.2


ARCHETYPES: dict[str, DishArchetype] = {
    archetype.key: archetype
    for archetype in (
        DishArchetype(
            "baked_good", "Bakes and Cakes",
            core=(("flour", 18.0), ("butter", 16.0), ("sugar", 16.0),
                  ("egg", 14.0), ("baking powder", 8.0), ("vanilla", 7.0),
                  ("milk", 7.0), ("baking soda", 4.0), ("brown sugar", 3.5),
                  ("cinnamon", 3.0)),
            category_multipliers=(("Dairy", 2.0), ("Additive", 1.8),
                                  ("Bakery", 1.2), ("Fruit", 1.1),
                                  ("Meat", 0.2), ("Fish", 0.05),
                                  ("Seafood", 0.05), ("Vegetable", 0.3)),
            size_shift=-0.5,
        ),
        DishArchetype(
            "bread", "Breads",
            core=(("flour", 20.0), ("yeast", 12.0), ("water", 10.0),
                  ("salt", 9.0), ("olive oil", 4.0), ("sugar", 3.0)),
            category_multipliers=(("Bakery", 1.5), ("Cereal", 1.6),
                                  ("Meat", 0.2), ("Fish", 0.1)),
            size_shift=-2.5,
        ),
        DishArchetype(
            "curry", "Curries",
            core=(("onion", 14.0), ("garlic", 12.0), ("ginger", 11.0),
                  ("turmeric", 10.0), ("cumin", 10.0), ("coriander", 8.0),
                  ("garam masala", 8.0), ("tomato", 7.0),
                  ("chili pepper", 6.0), ("ghee", 4.0), ("cilantro", 5.0),
                  ("cayenne", 5.0)),
            category_multipliers=(("Spice", 2.8), ("Vegetable", 1.4),
                                  ("Legume", 1.3), ("Dairy", 0.8),
                                  ("Bakery", 0.2)),
            size_shift=2.0,
        ),
        DishArchetype(
            "dal", "Lentil Stews",
            core=(("lentil", 16.0), ("turmeric", 10.0), ("cumin", 9.0),
                  ("mustard seed", 7.0), ("curry leaf", 6.0), ("ghee", 5.0),
                  ("onion", 6.0), ("garlic", 5.0), ("asafoetida", 3.0)),
            category_multipliers=(("Legume", 3.0), ("Spice", 2.4),
                                  ("Meat", 0.1), ("Bakery", 0.1)),
        ),
        DishArchetype(
            "stir_fry", "Stir-Fries",
            core=(("soybean sauce", 15.0), ("garlic", 12.0), ("ginger", 10.0),
                  ("scallion", 9.0), ("sesame oil", 7.0),
                  ("vegetable oil", 6.0), ("sesame", 5.0), ("corn starch", 4.0)),
            category_multipliers=(("Vegetable", 2.2), ("Meat", 1.2),
                                  ("Dairy", 0.1), ("Bakery", 0.1)),
        ),
        DishArchetype(
            "rice_dish", "Rice Dishes",
            core=(("rice", 18.0), ("onion", 8.0), ("garlic", 7.0),
                  ("egg", 5.0), ("scallion", 5.0), ("pea", 4.0),
                  ("carrot", 4.0)),
            category_multipliers=(("Cereal", 1.6), ("Vegetable", 1.5),
                                  ("Bakery", 0.2)),
        ),
        DishArchetype(
            "noodle_soup", "Noodle Bowls",
            core=(("noodle", 15.0), ("scallion", 9.0), ("ginger", 8.0),
                  ("soybean sauce", 8.0), ("garlic", 7.0),
                  ("chicken broth", 6.0), ("sesame oil", 5.0)),
            category_multipliers=(("Cereal", 1.4), ("Vegetable", 1.5),
                                  ("Dairy", 0.1)),
        ),
        DishArchetype(
            "sushi", "Sushi and Sashimi",
            core=(("rice", 14.0), ("nori", 12.0), ("rice vinegar", 10.0),
                  ("soybean sauce", 8.0), ("wasabi", 7.0), ("salmon", 6.0),
                  ("sesame", 5.0), ("tuna", 4.0), ("cucumber", 4.0),
                  ("sake", 3.5), ("mirin", 3.5)),
            category_multipliers=(("Fish", 2.5), ("Seafood", 1.8),
                                  ("Dairy", 0.05), ("Spice", 0.5)),
            size_shift=-1.0,
        ),
        DishArchetype(
            "soup", "Soups",
            core=(("onion", 12.0), ("carrot", 10.0), ("celery", 9.0),
                  ("chicken broth", 8.0), ("salt", 6.0), ("pepper", 6.0),
                  ("bay leaf", 4.0), ("butter", 3.0)),
            category_multipliers=(("Vegetable", 2.0), ("Herb", 1.4)),
        ),
        DishArchetype(
            "stew", "Stews and Braises",
            core=(("beef", 12.0), ("onion", 11.0), ("potato", 9.0),
                  ("carrot", 8.0), ("red wine", 5.0), ("thyme", 5.0),
                  ("bay leaf", 4.0), ("tomato paste", 4.0), ("flour", 3.0)),
            category_multipliers=(("Meat", 1.8), ("Vegetable", 1.7),
                                  ("Herb", 1.3)),
            size_shift=1.5,
        ),
        DishArchetype(
            "salad", "Salads",
            core=(("lettuce", 10.0), ("tomato", 10.0), ("cucumber", 9.0),
                  ("olive oil", 9.0), ("lemon juice", 7.0), ("onion", 5.0),
                  ("feta cheese", 4.0), ("vinegar", 4.0)),
            category_multipliers=(("Vegetable", 2.4), ("Herb", 1.5),
                                  ("Fruit", 1.3), ("Bakery", 0.2),
                                  ("Meat", 0.4)),
            size_shift=-1.0,
        ),
        DishArchetype(
            "pasta_dish", "Pasta",
            core=(("pasta", 12.0), ("spaghetti", 8.0), ("olive oil", 11.0),
                  ("garlic", 10.0), ("tomato", 9.0),
                  ("parmesan cheese", 8.0), ("basil", 7.0), ("onion", 5.0),
                  ("oregano", 4.0)),
            category_multipliers=(("Cereal", 1.5), ("Dairy", 1.3),
                                  ("Herb", 1.5), ("Vegetable", 1.3)),
        ),
        DishArchetype(
            "pizza_flatbread", "Pizzas and Flatbreads",
            core=(("flour", 10.0), ("tomato sauce", 9.0),
                  ("mozzarella cheese", 10.0), ("olive oil", 8.0),
                  ("oregano", 6.0), ("basil", 5.0), ("yeast", 4.0),
                  ("garlic", 4.0)),
            category_multipliers=(("Dairy", 1.6), ("Bakery", 1.4),
                                  ("Vegetable", 1.3)),
            size_shift=-0.5,
        ),
        DishArchetype(
            "taco", "Tacos and Antojitos",
            core=(("tortilla", 15.0), ("cilantro", 10.0), ("lime", 9.0),
                  ("onion", 8.0), ("cumin", 7.0), ("chili powder", 6.0),
                  ("jalapeno", 6.0), ("black bean", 5.0), ("tomato", 5.0),
                  ("avocado", 4.0), ("cheddar cheese", 3.0)),
            category_multipliers=(("Vegetable", 1.6), ("Spice", 1.5),
                                  ("Legume", 1.4), ("Maize", 2.0)),
        ),
        DishArchetype(
            "salsa_dip", "Salsas and Dips",
            core=(("tomato", 12.0), ("onion", 10.0), ("cilantro", 10.0),
                  ("lime juice", 8.0), ("jalapeno", 7.0), ("garlic", 5.0),
                  ("salt", 4.0)),
            category_multipliers=(("Vegetable", 2.2), ("Herb", 1.5),
                                  ("Meat", 0.2), ("Dairy", 0.4)),
            size_shift=-2.0,
        ),
        DishArchetype(
            "grill_bbq", "Grills and Barbecue",
            core=(("beef", 10.0), ("chicken", 9.0), ("paprika", 8.0),
                  ("garlic powder", 7.0), ("onion powder", 6.0),
                  ("barbecue sauce", 6.0), ("brown sugar", 5.0),
                  ("pepper", 5.0), ("salt", 5.0)),
            category_multipliers=(("Meat", 2.4), ("Spice", 1.6),
                                  ("Dairy", 0.4)),
        ),
        DishArchetype(
            "roast", "Roasts",
            core=(("chicken", 11.0), ("butter", 8.0), ("rosemary", 7.0),
                  ("thyme", 7.0), ("garlic", 8.0), ("lemon", 6.0),
                  ("olive oil", 6.0), ("potato", 5.0)),
            category_multipliers=(("Meat", 2.0), ("Herb", 1.6),
                                  ("Vegetable", 1.3)),
        ),
        DishArchetype(
            "seafood_dish", "Seafood Plates",
            core=(("fish", 11.0), ("shrimp", 9.0), ("lemon", 8.0),
                  ("garlic", 8.0), ("butter", 7.0), ("parsley", 6.0),
                  ("white wine", 5.0), ("olive oil", 5.0)),
            category_multipliers=(("Fish", 2.4), ("Seafood", 2.2),
                                  ("Herb", 1.3), ("Dairy", 0.7)),
        ),
        DishArchetype(
            "ceviche", "Ceviches and Citrus-Cured Fish",
            core=(("fish", 12.0), ("lime", 11.0), ("cilantro", 9.0),
                  ("onion", 8.0), ("chili pepper", 7.0), ("tomato", 5.0)),
            category_multipliers=(("Fish", 2.4), ("Seafood", 1.8),
                                  ("Fruit", 1.4), ("Dairy", 0.1)),
            size_shift=-1.5,
        ),
        DishArchetype(
            "dessert_custard", "Custards and Creams",
            core=(("milk", 12.0), ("cream", 11.0), ("sugar", 12.0),
                  ("egg", 10.0), ("vanilla", 9.0), ("cinnamon", 4.0),
                  ("butter", 4.0)),
            category_multipliers=(("Dairy", 2.6), ("Additive", 1.7),
                                  ("Vegetable", 0.2), ("Meat", 0.1),
                                  ("Fish", 0.02)),
            size_shift=-1.5,
        ),
        DishArchetype(
            "pie_pastry", "Pies and Pastry",
            core=(("pie crust", 10.0), ("butter", 12.0), ("flour", 11.0),
                  ("sugar", 10.0), ("apple", 6.0), ("cinnamon", 6.0),
                  ("egg", 5.0), ("vanilla", 4.0)),
            category_multipliers=(("Dairy", 1.8), ("Fruit", 1.6),
                                  ("Bakery", 1.5), ("Meat", 0.3)),
        ),
        DishArchetype(
            "pancake_breakfast", "Pancakes and Breakfast Griddle",
            core=(("flour", 13.0), ("egg", 11.0), ("milk", 10.0),
                  ("butter", 9.0), ("maple syrup", 6.0),
                  ("baking powder", 6.0), ("sugar", 5.0)),
            category_multipliers=(("Dairy", 2.0), ("Additive", 1.5),
                                  ("Bakery", 1.2), ("Fish", 0.05)),
            size_shift=-1.0,
        ),
        DishArchetype(
            "sandwich", "Sandwiches",
            core=(("bread", 13.0), ("butter", 8.0), ("cheddar cheese", 7.0),
                  ("ham", 6.0), ("lettuce", 6.0), ("mayonnaise", 6.0),
                  ("mustard", 5.0), ("tomato", 5.0)),
            category_multipliers=(("Bakery", 2.0), ("Meat", 1.4),
                                  ("Dairy", 1.3)),
            size_shift=-1.0,
        ),
        DishArchetype(
            "dumpling", "Dumplings",
            core=(("flour", 10.0), ("pork", 9.0), ("scallion", 8.0),
                  ("ginger", 8.0), ("soybean sauce", 8.0),
                  ("sesame oil", 6.0), ("cabbage", 6.0), ("garlic", 5.0)),
            category_multipliers=(("Meat", 1.5), ("Vegetable", 1.5),
                                  ("Dairy", 0.1)),
        ),
        DishArchetype(
            "kebab_grill", "Kebabs",
            core=(("lamb", 10.0), ("yogurt", 8.0), ("cumin", 8.0),
                  ("paprika", 7.0), ("garlic", 8.0), ("onion", 7.0),
                  ("lemon juice", 6.0), ("mint", 4.0)),
            category_multipliers=(("Meat", 2.0), ("Spice", 1.8),
                                  ("Herb", 1.3)),
        ),
        DishArchetype(
            "mezze", "Mezze and Dips",
            core=(("chickpea", 9.0), ("tahini", 8.0), ("lemon juice", 9.0),
                  ("olive oil", 10.0), ("garlic", 8.0), ("parsley", 7.0),
                  ("mint", 6.0), ("olive", 6.0), ("cumin", 5.0)),
            category_multipliers=(("Legume", 1.8), ("Herb", 1.8),
                                  ("Vegetable", 1.4), ("Dairy", 0.8)),
            size_shift=-0.5,
        ),
        DishArchetype(
            "tagine", "Tagines",
            core=(("cumin", 10.0), ("cinnamon", 8.0), ("olive", 8.0),
                  ("cilantro", 7.0), ("paprika", 7.0), ("onion", 7.0),
                  ("apricot", 5.0), ("couscous", 5.0), ("ginger", 4.0),
                  ("turmeric", 4.0)),
            category_multipliers=(("Spice", 2.4), ("Fruit", 1.4),
                                  ("Meat", 1.3), ("Vegetable", 1.3)),
            size_shift=1.0,
        ),
        DishArchetype(
            "pickle_ferment", "Pickles and Ferments",
            core=(("cabbage", 10.0), ("salt", 9.0), ("vinegar", 8.0),
                  ("garlic", 8.0), ("chili pepper", 7.0), ("sugar", 6.0),
                  ("gochugaru", 5.0), ("ginger", 5.0), ("scallion", 4.0)),
            category_multipliers=(("Vegetable", 2.2), ("Additive", 1.5),
                                  ("Dairy", 0.05), ("Meat", 0.2)),
            size_shift=-1.5,
        ),
        DishArchetype(
            "chowder", "Chowders and Cream Soups",
            core=(("potato", 10.0), ("cream", 9.0), ("butter", 9.0),
                  ("onion", 8.0), ("clam", 5.0), ("corn", 5.0),
                  ("bacon", 5.0), ("flour", 4.0), ("milk", 4.0)),
            category_multipliers=(("Dairy", 1.9), ("Vegetable", 1.5),
                                  ("Seafood", 1.3)),
        ),
        DishArchetype(
            "porridge", "Porridges",
            core=(("oat", 12.0), ("milk", 10.0), ("sugar", 7.0),
                  ("cinnamon", 6.0), ("honey", 6.0), ("butter", 4.0)),
            category_multipliers=(("Cereal", 2.0), ("Dairy", 1.8),
                                  ("Fruit", 1.4), ("Meat", 0.05),
                                  ("Vegetable", 0.2)),
            size_shift=-3.0,
        ),
        DishArchetype(
            "cocktail_drink", "Drinks and Punches",
            core=(("rum", 10.0), ("lime juice", 9.0), ("sugar", 8.0),
                  ("pineapple juice", 6.0), ("mint", 5.0), ("lime", 5.0),
                  ("orange juice", 4.0)),
            category_multipliers=(("Beverage", 2.6),
                                  ("Beverage Alcoholic", 2.6),
                                  ("Fruit", 1.8), ("Meat", 0.02),
                                  ("Vegetable", 0.2), ("Dairy", 0.3)),
            size_shift=-3.5,
        ),
        DishArchetype(
            "coconut_curry", "Coconut Curries",
            core=(("coconut milk", 12.0), ("red curry paste", 8.0),
                  ("fish sauce", 9.0), ("lime", 8.0), ("thai basil", 6.0),
                  ("lemongrass", 6.0), ("chili pepper", 6.0),
                  ("garlic", 5.0), ("ginger", 4.0), ("sugar", 4.0)),
            category_multipliers=(("Spice", 1.6), ("Herb", 1.6),
                                  ("Fish", 1.4), ("Seafood", 1.3),
                                  ("Dairy", 0.1)),
            size_shift=1.0,
        ),
        DishArchetype(
            "paella", "Paellas and Saffron Rice",
            core=(("rice", 12.0), ("saffron", 8.0), ("shrimp", 7.0),
                  ("chicken", 6.0), ("bell pepper", 7.0),
                  ("olive oil", 8.0), ("garlic", 7.0), ("paprika", 6.0),
                  ("pea", 4.0), ("tomato", 4.0)),
            category_multipliers=(("Seafood", 1.8), ("Vegetable", 1.4),
                                  ("Cereal", 1.3)),
            size_shift=1.5,
        ),
        DishArchetype(
            "goulash", "Goulash and Paprika Stews",
            core=(("beef", 10.0), ("paprika", 10.0), ("onion", 9.0),
                  ("caraway", 5.0), ("sour cream", 5.0), ("flour", 4.0),
                  ("garlic", 4.0), ("tomato", 4.0)),
            category_multipliers=(("Meat", 1.8), ("Spice", 1.4),
                                  ("Dairy", 1.3), ("Vegetable", 1.4)),
        ),
        DishArchetype(
            "nordic_plate", "Nordic Plates",
            core=(("salmon", 9.0), ("dill", 9.0), ("sour cream", 7.0),
                  ("potato", 8.0), ("butter", 7.0), ("rye bread", 5.0),
                  ("mustard", 4.0), ("caper", 3.0)),
            category_multipliers=(("Fish", 2.0), ("Dairy", 1.8),
                                  ("Herb", 1.3)),
            size_shift=-0.5,
        ),
        DishArchetype(
            "irish_comfort", "Potato Comfort Dishes",
            core=(("potato", 14.0), ("butter", 11.0), ("cream", 8.0),
                  ("cabbage", 6.0), ("leek", 6.0), ("flour", 5.0),
                  ("milk", 5.0), ("salt", 4.0)),
            category_multipliers=(("Dairy", 2.0), ("Vegetable", 1.6),
                                  ("Spice", 0.5)),
        ),
        DishArchetype(
            "korean_bbq", "Korean Grills",
            core=(("sesame", 11.0), ("soybean sauce", 11.0), ("garlic", 10.0),
                  ("sugar", 8.0), ("gochugaru", 7.0), ("gochujang", 6.0),
                  ("scallion", 7.0), ("sesame oil", 7.0), ("ginger", 5.0),
                  ("rice", 4.0)),
            category_multipliers=(("Meat", 1.5), ("Vegetable", 1.4),
                                  ("Dairy", 0.05)),
        ),
        DishArchetype(
            "casserole", "Casseroles",
            core=(("macaroni", 7.0), ("cheddar cheese", 8.0), ("milk", 7.0),
                  ("butter", 7.0), ("onion", 6.0), ("bread crumbs", 5.0),
                  ("celery", 5.0), ("chicken", 4.0), ("mushroom", 4.0)),
            category_multipliers=(("Dairy", 1.7), ("Cereal", 1.3),
                                  ("Vegetable", 1.3)),
        ),
    )
}


def _profile(
    code: str,
    weights: tuple[tuple[str, float], ...],
    emphasis: tuple[tuple[str, float], ...] = (),
    **kwargs,
) -> tuple[str, CuisineProfile]:
    return code, CuisineProfile(
        region_code=code,
        archetype_weights=weights,
        category_emphasis=emphasis,
        **kwargs,
    )


REGION_PROFILES: dict[str, CuisineProfile] = dict(
    (
        _profile(
            "AFR",
            (("tagine", 3.0), ("curry", 2.0), ("stew", 2.0),
             ("grill_bbq", 1.0), ("salad", 1.0), ("bread", 1.0),
             ("soup", 1.0)),
            (("Spice", 2.0), ("Legume", 1.3), ("Vegetable", 1.3),
             ("Dairy", 0.7)),
        ),
        _profile(
            "ANZ",
            (("baked_good", 3.0), ("grill_bbq", 2.0), ("roast", 1.5),
             ("salad", 1.0), ("dessert_custard", 1.0), ("pie_pastry", 1.0),
             ("sandwich", 1.0)),
            (("Dairy", 1.5), ("Meat", 1.2), ("Spice", 0.6)),
        ),
        _profile(
            "IRL",
            (("irish_comfort", 3.0), ("baked_good", 2.0), ("stew", 2.0),
             ("roast", 1.0), ("soup", 1.0), ("porridge", 1.0)),
            (("Dairy", 2.0), ("Vegetable", 1.2), ("Spice", 0.5)),
        ),
        _profile(
            "CAN",
            (("baked_good", 3.0), ("pancake_breakfast", 2.0),
             ("pie_pastry", 1.5), ("roast", 1.0), ("soup", 1.0),
             ("grill_bbq", 1.0)),
            (("Dairy", 1.5), ("Additive", 1.3), ("Spice", 0.7)),
        ),
        _profile(
            "CBN",
            (("cocktail_drink", 2.0), ("grill_bbq", 2.0), ("rice_dish", 1.5),
             ("seafood_dish", 1.0), ("stew", 1.0), ("dessert_custard", 1.0)),
            (("Fruit", 1.8), ("Spice", 1.3),
             ("Beverage Alcoholic", 1.5), ("Seafood", 1.2)),
        ),
        _profile(
            "CHN",
            (("stir_fry", 3.0), ("rice_dish", 2.0), ("dumpling", 2.0),
             ("noodle_soup", 2.0), ("soup", 1.0)),
            (("Vegetable", 1.5), ("Maize", 1.4), ("Dairy", 0.15),
             ("Seafood", 1.2)),
        ),
        _profile(
            "DACH",
            (("baked_good", 3.0), ("goulash", 2.0), ("bread", 1.5),
             ("dessert_custard", 1.5), ("sandwich", 1.0), ("roast", 1.0)),
            (("Dairy", 1.6), ("Meat", 1.3), ("Bakery", 1.3)),
        ),
        _profile(
            "EE",
            (("baked_good", 2.5), ("goulash", 2.0), ("soup", 1.5),
             ("dumpling", 1.5), ("bread", 1.0), ("pickle_ferment", 0.8)),
            (("Dairy", 1.4), ("Vegetable", 1.3), ("Meat", 1.2)),
        ),
        _profile(
            "FRA",
            (("baked_good", 2.5), ("dessert_custard", 2.0), ("roast", 1.5),
             ("pie_pastry", 1.5), ("soup", 1.0), ("seafood_dish", 1.0)),
            (("Dairy", 1.9), ("Herb", 1.2), ("Beverage Alcoholic", 1.2)),
        ),
        _profile(
            "GRC",
            (("salad", 2.5), ("mezze", 2.0), ("roast", 1.5),
             ("seafood_dish", 1.0), ("pie_pastry", 1.0)),
            (("Vegetable", 1.5), ("Herb", 1.4), ("Dairy", 1.2),
             ("Fruit", 1.2)),
        ),
        _profile(
            "INSC",
            (("curry", 3.5), ("dal", 2.5), ("bread", 1.5),
             ("rice_dish", 1.5), ("dessert_custard", 1.0),
             ("pickle_ferment", 0.5)),
            (("Spice", 2.5), ("Legume", 1.6), ("Dairy", 1.1),
             ("Meat", 0.7)),
            size_mean=9.4,
        ),
        _profile(
            "ITA",
            (("pasta_dish", 3.5), ("pizza_flatbread", 2.0),
             ("dessert_custard", 1.5), ("salad", 1.0), ("roast", 1.0),
             ("soup", 1.0)),
            (("Herb", 1.5), ("Dairy", 1.3), ("Vegetable", 1.3)),
        ),
        _profile(
            "JPN",
            (("sushi", 2.5), ("noodle_soup", 2.0), ("stir_fry", 1.5),
             ("rice_dish", 1.5), ("soup", 1.5), ("pickle_ferment", 0.5)),
            (("Fish", 2.2), ("Seafood", 1.6), ("Dairy", 0.1),
             ("Plant", 1.4)),
            size_mean=8.5,
        ),
        _profile(
            "KOR",
            (("korean_bbq", 3.0), ("pickle_ferment", 2.0),
             ("rice_dish", 1.5), ("noodle_soup", 1.5), ("stew", 1.0)),
            (("Vegetable", 1.5), ("Dairy", 0.1), ("Spice", 1.2),
             ("Fish", 1.2)),
            size_mean=8.5,
        ),
        _profile(
            "MEX",
            (("taco", 3.5), ("salsa_dip", 2.0), ("rice_dish", 1.5),
             ("stew", 1.0), ("grill_bbq", 1.0), ("soup", 1.0)),
            (("Vegetable", 1.4), ("Spice", 1.3), ("Maize", 2.0),
             ("Legume", 1.3)),
        ),
        _profile(
            "ME",
            (("mezze", 3.0), ("kebab_grill", 2.5), ("rice_dish", 1.5),
             ("salad", 1.5), ("bread", 1.0), ("dessert_custard", 1.0)),
            (("Herb", 1.6), ("Spice", 1.4), ("Legume", 1.4),
             ("Fruit", 1.2)),
        ),
        _profile(
            "SCND",
            (("baked_good", 2.5), ("nordic_plate", 2.5),
             ("seafood_dish", 1.5), ("porridge", 1.0), ("soup", 1.0)),
            (("Dairy", 1.8), ("Fish", 1.6), ("Bakery", 1.2),
             ("Spice", 0.6)),
        ),
        _profile(
            "SAM",
            (("grill_bbq", 2.5), ("stew", 2.0), ("ceviche", 1.5),
             ("pie_pastry", 1.5), ("rice_dish", 1.0), ("salad", 1.0)),
            (("Meat", 1.8), ("Vegetable", 1.3), ("Fungus", 1.3)),
        ),
        _profile(
            "SEA",
            (("coconut_curry", 2.0), ("stir_fry", 2.0), ("noodle_soup", 2.0),
             ("rice_dish", 1.5), ("ceviche", 1.0)),
            (("Fish", 1.8), ("Herb", 1.3), ("Dairy", 0.1),
             ("Fruit", 1.2)),
            size_mean=8.5,
        ),
        _profile(
            "SP",
            (("paella", 2.5), ("seafood_dish", 2.0), ("stew", 1.5),
             ("salad", 1.0), ("grill_bbq", 1.0), ("mezze", 1.0)),
            (("Seafood", 1.5), ("Vegetable", 1.3), ("Herb", 1.2)),
        ),
        _profile(
            "THA",
            (("coconut_curry", 3.0), ("stir_fry", 2.0), ("noodle_soup", 1.5),
             ("salad", 1.5), ("rice_dish", 1.0)),
            (("Herb", 1.6), ("Fish", 1.5), ("Dairy", 0.1),
             ("Fruit", 1.3), ("Spice", 1.2)),
            size_mean=8.5,
        ),
        _profile(
            "USA",
            (("baked_good", 2.5), ("grill_bbq", 2.0), ("sandwich", 1.5),
             ("pancake_breakfast", 1.5), ("pie_pastry", 1.5),
             ("casserole", 1.0), ("chowder", 1.0), ("salad", 1.0)),
            (("Dairy", 1.4), ("Additive", 1.4), ("Meat", 1.2)),
        ),
        _profile(
            "BN",
            (("baked_good", 3.0), ("pancake_breakfast", 1.5),
             ("irish_comfort", 1.5), ("stew", 1.5), ("chowder", 1.0),
             ("seafood_dish", 1.0)),
            (("Dairy", 1.6), ("Bakery", 1.3), ("Spice", 0.6)),
        ),
        _profile(
            "CAM",
            (("soup", 2.0), ("rice_dish", 2.0), ("taco", 1.5),
             ("stew", 1.5), ("casserole", 1.0), ("salad", 1.0)),
            (("Vegetable", 1.5), ("Additive", 1.2), ("Maize", 1.5)),
            size_mean=8.0,
        ),
        _profile(
            "UK",
            (("baked_good", 3.0), ("roast", 2.0), ("pie_pastry", 2.0),
             ("irish_comfort", 1.5), ("sandwich", 1.0), ("porridge", 1.0)),
            (("Dairy", 1.6), ("Bakery", 1.3), ("Meat", 1.2),
             ("Spice", 0.7)),
        ),
    )
)


def validate_archetypes(lexicon: Lexicon) -> None:
    """Check archetypes/profiles are consistent with a lexicon.

    Raises:
        SynthesisError: On unknown core ingredient names, unknown
            archetype keys in profiles, or missing region profiles.
    """
    missing: list[str] = []
    for archetype in ARCHETYPES.values():
        for name, boost in archetype.core:
            if boost <= 0:
                raise SynthesisError(
                    f"archetype {archetype.key!r} has non-positive boost "
                    f"for {name!r}"
                )
            if lexicon.get(name) is None:
                missing.append(f"{archetype.key}:{name}")
    if missing:
        raise SynthesisError(
            f"archetype core names missing from lexicon: {missing}"
        )
    for code in ALL_REGION_CODES:
        profile = REGION_PROFILES.get(code)
        if profile is None:
            raise SynthesisError(f"no cuisine profile for region {code!r}")
        if not profile.archetype_weights:
            raise SynthesisError(f"profile {code!r} mixes no archetypes")
        for key, weight in profile.archetype_weights:
            if key not in ARCHETYPES:
                raise SynthesisError(
                    f"profile {code!r} references unknown archetype {key!r}"
                )
            if weight <= 0:
                raise SynthesisError(
                    f"profile {code!r} has non-positive weight for {key!r}"
                )
