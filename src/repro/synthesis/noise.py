"""Messy ingredient-mention rendering.

Real website records spell ingredients with quantities, units and
preparation notes ("2 cups finely chopped fresh cilantro leaves"), which
is exactly what the paper's aliasing protocol exists to undo.  This
module renders canonical ingredients back into such raw text so the ETL
pipeline (and its tests) exercise the full protocol.

Renderings are built so that the protocol can always recover the entity:
amounts and units come from the normalizer's own strip lists, descriptors
from ``DESCRIPTOR_WORDS``, and the surface form is the canonical name or
a curated alias.
"""

from __future__ import annotations

import numpy as np

from repro.lexicon.aliasing import AliasResolver
from repro.lexicon.ingredient import Ingredient
from repro.rng import SeedLike, ensure_rng

__all__ = ["MentionRenderer"]

_AMOUNTS = ("1", "2", "3", "4", "1/2", "1/4", "3/4", "1.5", "2.5")
_UNITS = (
    "cup", "cups", "tablespoon", "tablespoons", "tbsp", "teaspoon",
    "teaspoons", "tsp", "ounce", "ounces", "oz", "pound", "lb", "gram",
    "g", "ml", "pinch", "dash", "can", "package", "bunch", "stick",
)
_DESCRIPTORS = (
    "fresh", "chopped", "finely chopped", "minced", "diced", "sliced",
    "grated", "shredded", "peeled", "crushed", "roughly chopped",
    "thinly sliced", "softened", "melted", "toasted", "cooked", "large",
    "small", "medium", "ripe",
)
_SUFFIXES = ("", ", or to taste", ", divided", ", optional", ", for garnish")


class MentionRenderer:
    """Renders :class:`Ingredient` entities as messy recipe-line text.

    Args:
        seed: RNG seed.
        validate_with: Optional resolver; when given, every rendering is
            checked to resolve back to its entity, and genuinely
            ambiguous phrasings (a human writing "fresh coriander seed"
            is ambiguous too) fall back to an unambiguous form.
    """

    def __init__(
        self,
        seed: SeedLike = None,
        validate_with: AliasResolver | None = None,
    ):
        self._rng = ensure_rng(seed)
        self._validator = validate_with

    def render(self, ingredient: Ingredient) -> str:
        """One messy mention for ``ingredient``.

        The surface form is the canonical name (usually) or a curated
        alias (sometimes), wrapped in quantity/unit/descriptor noise.
        """
        mention = self._render_once(ingredient)
        if self._validator is not None:
            resolution = self._validator.resolve(mention)
            if (
                resolution.ingredient is None
                or resolution.ingredient.name != ingredient.name
            ):
                mention = f"2 cups {ingredient.name}"
        return mention

    def _render_once(self, ingredient: Ingredient) -> str:
        rng = self._rng
        forms = ingredient.surface_forms
        # Canonical name twice as likely as any single alias.
        weights = np.ones(len(forms))
        weights[0] = 2.0
        weights /= weights.sum()
        surface = forms[int(rng.choice(len(forms), p=weights))]

        parts: list[str] = []
        if rng.random() < 0.85:
            parts.append(str(rng.choice(_AMOUNTS)))
            if rng.random() < 0.8:
                parts.append(str(rng.choice(_UNITS)))
        if rng.random() < 0.45:
            parts.append(str(rng.choice(_DESCRIPTORS)))
        parts.append(surface)
        mention = " ".join(parts)
        if rng.random() < 0.15:
            mention += str(rng.choice(_SUFFIXES))
        if rng.random() < 0.1:
            mention = mention.capitalize()
        return mention

    def render_all(self, ingredients: list[Ingredient]) -> tuple[str, ...]:
        """Messy mentions for a whole recipe, order shuffled."""
        order = self._rng.permutation(len(ingredients))
        return tuple(self.render(ingredients[i]) for i in order)
