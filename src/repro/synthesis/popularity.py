"""Popularity models for the synthetic corpus.

The culinary literature the paper builds on (refs [3]-[8]) consistently
reports Zipf-like ingredient rank-frequency distributions.  The
WorldKitchen generator therefore equips every cuisine with a Zipf
popularity vector over its vocabulary, and samples recipes *without
replacement* proportionally to (boosted) popularity using the Gumbel
top-k trick — equivalent to Plackett-Luce sampling, but vectorizable
across thousands of recipes at once.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SynthesisError

__all__ = ["zipf_weights", "gumbel_topk", "truncated_normal_sizes"]


def zipf_weights(n: int, exponent: float = 0.9) -> np.ndarray:
    """Normalized Zipf weight vector of length ``n``.

    ``weights[r] ∝ (r + 1) ** -exponent`` — rank 0 is the most popular.

    Args:
        n: Vocabulary size.
        exponent: Zipf exponent ``s``; larger = steeper head.

    Returns:
        A float array summing to 1.
    """
    if n < 1:
        raise SynthesisError(f"vocabulary size must be >= 1, got {n}")
    if exponent < 0:
        raise SynthesisError(f"zipf exponent must be >= 0, got {exponent}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** -exponent
    return weights / weights.sum()


def gumbel_topk(
    rng: np.random.Generator,
    log_weights: np.ndarray,
    sizes: np.ndarray,
) -> list[np.ndarray]:
    """Weighted sampling without replacement for many draws at once.

    Adding i.i.d. Gumbel noise to log-weights and taking the top-k indices
    draws ``k`` items without replacement with probabilities proportional
    to the weights (the Gumbel-max construction of Plackett-Luce).

    Args:
        rng: Random generator.
        log_weights: ``(V,)`` log weight vector (``-inf`` excludes items).
        sizes: ``(G,)`` integer array; row ``g`` draws ``sizes[g]`` items.

    Returns:
        A list of ``G`` index arrays, each of length ``sizes[g]``,
        ordered by descending perturbed score.
    """
    if log_weights.ndim != 1:
        raise SynthesisError("log_weights must be one-dimensional")
    n_rows = int(sizes.size)
    if n_rows == 0:
        return []
    vocabulary = log_weights.size
    max_k = int(sizes.max())
    if max_k > vocabulary:
        raise SynthesisError(
            f"cannot draw {max_k} distinct items from a vocabulary of "
            f"{vocabulary}"
        )
    gumbel = rng.gumbel(size=(n_rows, vocabulary))
    scores = log_weights[None, :] + gumbel
    # argpartition to the largest max_k, then order those by score.
    top = np.argpartition(scores, vocabulary - max_k, axis=1)[:, vocabulary - max_k:]
    top_scores = np.take_along_axis(scores, top, axis=1)
    order = np.argsort(-top_scores, axis=1)
    ranked = np.take_along_axis(top, order, axis=1)
    return [ranked[row, : int(sizes[row])] for row in range(n_rows)]


def truncated_normal_sizes(
    rng: np.random.Generator,
    count: int,
    mean: float,
    sigma: float,
    lower: int,
    upper: int,
    max_tries: int = 64,
) -> np.ndarray:
    """Integer recipe sizes from a truncated normal (Fig. 1's shape).

    Draws are rounded then resampled while out of ``[lower, upper]``;
    stubborn leftovers are clipped (the tail mass involved is tiny).

    Args:
        rng: Random generator.
        count: Number of sizes to draw.
        mean: Target mean before truncation.
        sigma: Standard deviation before truncation.
        lower: Inclusive lower bound (paper: 2).
        upper: Inclusive upper bound (paper: 38).
        max_tries: Resampling rounds before clipping.

    Returns:
        ``(count,)`` int64 array within bounds.
    """
    if lower > upper:
        raise SynthesisError(f"invalid size bounds [{lower}, {upper}]")
    if count < 0:
        raise SynthesisError(f"count must be >= 0, got {count}")
    sizes = np.rint(rng.normal(mean, sigma, size=count)).astype(np.int64)
    for _ in range(max_tries):
        bad = (sizes < lower) | (sizes > upper)
        n_bad = int(bad.sum())
        if n_bad == 0:
            break
        sizes[bad] = np.rint(rng.normal(mean, sigma, size=n_bad)).astype(np.int64)
    return np.clip(sizes, lower, upper)
