"""Calibration checks: does the synthetic corpus match its targets?

The WorldKitchen generator is calibrated against every statistic the
paper publishes about its corpus.  This module quantifies the match so
tests, experiments and EXPERIMENTS.md can report it:

* per-region recipe counts (exact by construction at scale 1.0);
* per-region unique-ingredient counts vs Table I (approximate — the
  Zipf tail of a vocabulary may go unobserved in small cuisines);
* recipe sizes within [2, 38] with aggregate mean near 9 (Fig. 1);
* signature (Table I top-5) ingredients actually overrepresented.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PAPER
from repro.corpus.dataset import RecipeDataset
from repro.corpus.regions import get_region
from repro.errors import CalibrationError

__all__ = ["RegionCalibration", "CalibrationSummary", "check_calibration"]


@dataclass(frozen=True)
class RegionCalibration:
    """Calibration outcome for one region.

    Attributes:
        region_code: Region checked.
        n_recipes: Generated recipe count.
        target_recipes: Table I recipe count (scaled).
        n_ingredients: Observed unique ingredients.
        target_ingredients: Table I unique-ingredient count.
        ingredient_coverage: Observed / target ingredient counts.
        mean_size: Observed mean recipe size.
        sizes_in_bounds: Whether all sizes fall in the paper's [2, 38].
    """

    region_code: str
    n_recipes: int
    target_recipes: int
    n_ingredients: int
    target_ingredients: int
    ingredient_coverage: float
    mean_size: float
    sizes_in_bounds: bool


@dataclass(frozen=True)
class CalibrationSummary:
    """Whole-corpus calibration outcome."""

    regions: tuple[RegionCalibration, ...]
    aggregate_mean_size: float
    min_ingredient_coverage: float
    max_ingredient_coverage: float

    def worst_region(self) -> RegionCalibration:
        """Region with the lowest ingredient coverage."""
        return min(self.regions, key=lambda r: r.ingredient_coverage)


def check_calibration(
    dataset: RecipeDataset,
    scale: float = 1.0,
    min_coverage: float = 0.6,
    max_coverage: float = 1.4,
    strict: bool = False,
) -> CalibrationSummary:
    """Measure how closely a generated corpus matches its targets.

    Args:
        dataset: Corpus to check (regions must be Table I regions).
        scale: The scale the corpus was generated at.
        min_coverage: Lower acceptance bound on ingredient coverage.
        max_coverage: Upper acceptance bound on ingredient coverage.
        strict: If True, raise :class:`CalibrationError` on violations
            instead of just reporting them.

    Returns:
        A :class:`CalibrationSummary` with per-region details.
    """
    regions = []
    violations: list[str] = []
    for code in dataset.region_codes():
        region = get_region(code)
        view = dataset.cuisine(code)
        sizes = view.sizes()
        target_recipes = max(int(round(region.n_recipes * scale)), 1)
        coverage = view.n_ingredients / region.n_ingredients
        in_bounds = bool(
            (sizes >= PAPER.recipe_size_min).all()
            and (sizes <= PAPER.recipe_size_max).all()
        )
        record = RegionCalibration(
            region_code=code,
            n_recipes=view.n_recipes,
            target_recipes=target_recipes,
            n_ingredients=view.n_ingredients,
            target_ingredients=region.n_ingredients,
            ingredient_coverage=coverage,
            mean_size=float(sizes.mean()),
            sizes_in_bounds=in_bounds,
        )
        regions.append(record)
        if not in_bounds:
            violations.append(f"{code}: recipe sizes out of [2, 38]")
        if scale >= 1.0 and not min_coverage <= coverage <= max_coverage:
            violations.append(
                f"{code}: ingredient coverage {coverage:.2f} outside "
                f"[{min_coverage}, {max_coverage}]"
            )

    summary = CalibrationSummary(
        regions=tuple(regions),
        aggregate_mean_size=float(dataset.sizes().mean()),
        min_ingredient_coverage=min(r.ingredient_coverage for r in regions),
        max_ingredient_coverage=max(r.ingredient_coverage for r in regions),
    )
    if strict and violations:
        raise CalibrationError("; ".join(violations))
    return summary
