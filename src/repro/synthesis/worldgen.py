"""WorldKitchen: the calibrated synthetic corpus generator.

This is the repository's substitute for the paper's 158,544 scraped
recipes (see DESIGN.md §2).  For each of the 25 regions it

1. selects a cuisine *vocabulary* of the Table I size — signature
   ingredients and archetype cores first, the rest drawn with
   category-emphasis weights;
2. assigns Zipf base popularity over that vocabulary (signatures at the
   top ranks);
3. draws each recipe from a *dish archetype* (latent template): recipe
   size from a truncated normal in [2, 38], ingredients sampled without
   replacement via Gumbel top-k with weights =
   base popularity × archetype core boost × category multipliers ×
   signature boost.

The generator is deliberately **not** the paper's copy-mutate process, so
the Sec. VI model comparison run against this corpus is not circular.

Outputs come in two forms: standardized :class:`Recipe` datasets (fast
path used by experiments) and raw website-style records
(:class:`RawRecipe`, exercising the full ETL pipeline).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

import numpy as np

from repro.corpus.dataset import RecipeDataset
from repro.corpus.recipe import RawRecipe, Recipe
from repro.corpus.regions import REGIONS, Region, get_region
from repro.corpus.sources import SOURCES
from repro.errors import SynthesisError
from repro.lexicon.categories import Category
from repro.lexicon.lexicon import Lexicon
from repro.rng import SeedLike, derive_seed, ensure_rng
from repro.synthesis.archetypes import (
    ARCHETYPES,
    REGION_PROFILES,
    validate_archetypes,
)
from repro.synthesis.noise import MentionRenderer
from repro.synthesis.popularity import (
    gumbel_topk,
    truncated_normal_sizes,
    zipf_weights,
)

__all__ = ["WorldKitchen", "CuisineBlueprint", "generate_world_corpus"]

_SIZE_MIN = 2
_SIZE_MAX = 38


@dataclass(frozen=True)
class CuisineBlueprint:
    """Frozen sampling state for one cuisine.

    Attributes:
        region: The Table I region record.
        vocabulary_ids: Lexicon ids forming the cuisine vocabulary,
            ordered by popularity rank (rank 0 most popular).
        base_log_weights: Log base popularity per vocabulary position.
        archetype_keys: Keys of the archetypes this cuisine mixes.
        archetype_probs: Mixing probabilities aligned to
            ``archetype_keys``.
        archetype_log_weights: ``(n_archetypes, V)`` matrix of per-
            archetype log sampling weights over the vocabulary.
    """

    region: Region
    vocabulary_ids: np.ndarray
    base_log_weights: np.ndarray
    archetype_keys: tuple[str, ...]
    archetype_probs: np.ndarray
    archetype_log_weights: np.ndarray


class WorldKitchen:
    """Generator of calibrated synthetic recipe corpora.

    Args:
        lexicon: Standardized lexicon the corpus is expressed in.
        seed: Root seed; every output is deterministic given it.

    All public ``generate_*`` methods are pure with respect to the stored
    root seed — calling them repeatedly yields the same data.
    """

    def __init__(self, lexicon: Lexicon, seed: SeedLike = 0):
        validate_archetypes(lexicon)
        self._lexicon = lexicon
        self._root_seed = derive_seed(ensure_rng(seed))
        self._blueprints: dict[str, CuisineBlueprint] = {}

    @property
    def lexicon(self) -> Lexicon:
        return self._lexicon

    # ------------------------------------------------------------------
    # Blueprint construction
    # ------------------------------------------------------------------

    def blueprint(self, region_code: str) -> CuisineBlueprint:
        """The (cached) sampling blueprint for one region."""
        region = get_region(region_code)
        cached = self._blueprints.get(region.code)
        if cached is None:
            cached = self._build_blueprint(region)
            self._blueprints[region.code] = cached
        return cached

    def _region_rng(self, region: Region, purpose: str) -> np.random.Generator:
        # Independent, reproducible stream per (seed, region, purpose).
        # The key must be derived hash-stably: Python's str hashing is
        # salted per process (PYTHONHASHSEED), which used to make every
        # corpus differ across interpreter invocations — poisoning the
        # runtime's on-disk run cache and any cross-process comparison.
        digest = hashlib.sha256(
            f"{self._root_seed}:{region.code}:{purpose}".encode("utf-8")
        ).digest()
        key = int.from_bytes(digest[:4], "big") & 0x7FFFFFFF
        return np.random.default_rng(np.random.SeedSequence((self._root_seed, key)))

    def _build_blueprint(self, region: Region) -> CuisineBlueprint:
        profile = REGION_PROFILES[region.code]
        rng = self._region_rng(region, "blueprint")
        lexicon = self._lexicon

        emphasis = {Category(value): mult for value, mult in profile.category_emphasis}

        # -- mandatory vocabulary: signatures then archetype cores.
        mandatory: list[int] = []
        seen: set[int] = set()
        for name in region.overrepresented:
            ingredient = lexicon.by_name(name)
            if ingredient.ingredient_id not in seen:
                seen.add(ingredient.ingredient_id)
                mandatory.append(ingredient.ingredient_id)
        for key, _weight in profile.archetype_weights:
            for name, _boost in ARCHETYPES[key].core:
                ingredient = lexicon.by_name(name)
                if ingredient.ingredient_id not in seen:
                    seen.add(ingredient.ingredient_id)
                    mandatory.append(ingredient.ingredient_id)

        target_size = region.n_ingredients
        if target_size < len(mandatory):
            raise SynthesisError(
                f"region {region.code}: vocabulary target {target_size} "
                f"smaller than mandatory pool {len(mandatory)}"
            )

        # -- fill the rest by category-emphasis weighted draw.
        candidates = np.array(
            [i.ingredient_id for i in lexicon if i.ingredient_id not in seen],
            dtype=np.int64,
        )
        n_fill = min(target_size - len(mandatory), candidates.size)
        if n_fill > 0:
            weights = np.array(
                [
                    emphasis.get(lexicon.category_of(int(i)), 1.0)
                    for i in candidates
                ]
            )
            log_w = np.log(np.maximum(weights, 1e-12))
            (fill_rows,) = gumbel_topk(
                rng, log_w, np.array([n_fill], dtype=np.int64)
            )
            fill_ids = candidates[fill_rows]
        else:
            fill_ids = np.empty(0, dtype=np.int64)

        vocabulary = np.concatenate(
            [np.asarray(mandatory, dtype=np.int64), fill_ids]
        )
        vocab_size = vocabulary.size

        # -- base popularity: Zipf over rank order (mandatory first).
        base = zipf_weights(vocab_size, profile.zipf_exponent)
        base_log = np.log(base)

        # signature boost on Table I overrepresented entities.
        signature_ids = {
            lexicon.by_name(name).ingredient_id
            for name in region.overrepresented
        }
        category_by_pos = [
            lexicon.category_of(int(ingredient_id)) for ingredient_id in vocabulary
        ]
        emphasis_log = np.log(
            np.array([max(emphasis.get(c, 1.0), 1e-12) for c in category_by_pos])
        )
        signature_log = np.log(profile.signature_boost) * np.array(
            [1.0 if int(i) in signature_ids else 0.0 for i in vocabulary]
        )
        base_log = base_log + emphasis_log + signature_log

        # -- per-archetype weight matrices.
        keys = tuple(key for key, _w in profile.archetype_weights)
        mix = np.array([w for _k, w in profile.archetype_weights])
        mix = mix / mix.sum()

        position_of = {int(ingredient_id): pos for pos, ingredient_id in enumerate(vocabulary)}
        matrices = np.tile(base_log, (len(keys), 1))
        for row, key in enumerate(keys):
            archetype = ARCHETYPES[key]
            multipliers = {
                Category(value): mult
                for value, mult in archetype.category_multipliers
            }
            if multipliers:
                matrices[row] += np.log(
                    np.array(
                        [max(multipliers.get(c, 1.0), 1e-12) for c in category_by_pos]
                    )
                )
            for name, boost in archetype.core:
                pos = position_of.get(lexicon.by_name(name).ingredient_id)
                if pos is not None:
                    matrices[row, pos] += math.log(boost)

        return CuisineBlueprint(
            region=region,
            vocabulary_ids=vocabulary,
            base_log_weights=base_log,
            archetype_keys=keys,
            archetype_probs=mix,
            archetype_log_weights=matrices,
        )

    # ------------------------------------------------------------------
    # Recipe generation
    # ------------------------------------------------------------------

    def generate_cuisine(
        self,
        region_code: str,
        n_recipes: int | None = None,
        start_recipe_id: int = 0,
    ) -> list[Recipe]:
        """Generate standardized recipes for one cuisine.

        Args:
            region_code: Table I region.
            n_recipes: Recipe count (defaults to the region's Table I
                count).
            start_recipe_id: First recipe id.

        Returns:
            Recipes in generation order with sequential ids.
        """
        blueprint = self.blueprint(region_code)
        region = blueprint.region
        profile = REGION_PROFILES[region.code]
        count = region.n_recipes if n_recipes is None else int(n_recipes)
        if count < 0:
            raise SynthesisError(f"n_recipes must be >= 0, got {count}")
        if count == 0:
            return []

        rng = self._region_rng(region, "recipes")
        lengths, flat_ids, recipe_ids, titles = self._cuisine_arrays(
            blueprint, rng, count, start_recipe_id, row_offset=0
        )
        recipes: list[Recipe] = []
        bounds = np.cumsum(lengths)
        for row in range(count):
            ids = flat_ids[int(bounds[row] - lengths[row]):int(bounds[row])]
            recipes.append(
                Recipe(
                    recipe_id=int(recipe_ids[row]),
                    region_code=region.code,
                    ingredient_ids=tuple(int(i) for i in ids),
                    title=titles[row],
                    source="",
                )
            )
        return recipes

    def _cuisine_arrays(
        self,
        blueprint: CuisineBlueprint,
        rng: np.random.Generator,
        count: int,
        start_recipe_id: int,
        row_offset: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[str]]:
        """The sampling core, emitting flat arrays instead of objects.

        Draws ``count`` recipes from ``rng`` exactly as
        :meth:`generate_cuisine` always has (same RNG call sequence:
        one archetype assignment, then per-archetype size and Gumbel
        top-k draws) and returns them CSR-shaped — per-recipe lengths,
        concatenated sorted ingredient ids, recipe ids and titles in
        row order — so the streaming columnar path shares one sampling
        implementation with the object path.

        Args:
            row_offset: Global row number of this batch's first recipe
                within its cuisine (keeps titles unique across chunks).
        """
        region = blueprint.region
        profile = REGION_PROFILES[region.code]
        assignment = rng.choice(
            len(blueprint.archetype_keys), size=count, p=blueprint.archetype_probs
        )
        vocab = blueprint.vocabulary_ids
        per_row_ids: list[np.ndarray | None] = [None] * count
        titles: list[str] = [""] * count
        for archetype_row in range(len(blueprint.archetype_keys)):
            rows = np.flatnonzero(assignment == archetype_row)
            if rows.size == 0:
                continue
            archetype = ARCHETYPES[blueprint.archetype_keys[archetype_row]]
            sizes = truncated_normal_sizes(
                rng,
                rows.size,
                mean=profile.size_mean + archetype.size_shift,
                sigma=profile.size_sigma,
                lower=_SIZE_MIN,
                upper=min(_SIZE_MAX, vocab.size),
            )
            draws = gumbel_topk(
                rng, blueprint.archetype_log_weights[archetype_row], sizes
            )
            for row, positions in zip(rows, draws):
                per_row_ids[row] = np.sort(vocab[positions])
                titles[row] = (
                    f"{region.code} {archetype.title} #{row_offset + int(row)}"
                )
        lengths = np.fromiter(
            (ids.size for ids in per_row_ids), dtype=np.int64, count=count
        )
        flat_ids = (
            np.concatenate(per_row_ids)
            if count
            else np.empty(0, dtype=np.int64)
        )
        recipe_ids = start_recipe_id + np.arange(count, dtype=np.int64)
        return lengths, flat_ids, recipe_ids, titles

    def generate_dataset(
        self,
        region_codes: tuple[str, ...] | list[str] | None = None,
        scale: float = 1.0,
        min_recipes: int = 30,
    ) -> RecipeDataset:
        """Generate the multi-cuisine corpus.

        Args:
            region_codes: Regions to include (default: all 25).
            scale: Multiplier on every region's Table I recipe count —
                ``1.0`` reproduces the full published corpus size;
                experiments and benches use smaller scales.
            min_recipes: Per-region floor after scaling, so tiny scales
                still produce analyzable cuisines.

        Returns:
            A :class:`RecipeDataset` covering the requested regions.
        """
        if scale <= 0:
            raise SynthesisError(f"scale must be > 0, got {scale}")
        codes = (
            tuple(region.code for region in REGIONS)
            if region_codes is None
            else tuple(get_region(code).code for code in region_codes)
        )
        recipes: list[Recipe] = []
        next_id = 0
        for code in codes:
            region = get_region(code)
            count = max(int(round(region.n_recipes * scale)), min_recipes)
            generated = self.generate_cuisine(
                code, n_recipes=count, start_recipe_id=next_id
            )
            next_id += count
            recipes.extend(generated)
        return RecipeDataset(recipes)

    def generate_columnar(
        self,
        path,
        region_codes: tuple[str, ...] | list[str] | None = None,
        scale: float = 1.0,
        min_recipes: int = 30,
        chunk_recipes: int = 100_000,
        store_text: bool = True,
        bitplanes: bool = True,
    ):
        """Stream a (possibly 100×–1000× scale) corpus straight to disk.

        Generates the same worlds as :meth:`generate_dataset` but emits
        each cuisine chunk-wise into a
        :class:`~repro.storage.columnar.ColumnarWriter`, so no
        ``Recipe`` objects — and never the whole corpus — exist in
        memory.  Determinism contract: a cuisine whose recipe count
        fits one chunk is drawn from the single ``"recipes"`` stream
        and is **content-identical** to :meth:`generate_dataset` at the
        same seed/scale (pinned by the round-trip tests); larger
        cuisines draw chunk ``i`` from its own
        ``"recipes/{i}"`` stream — still fully deterministic in
        ``(seed, scale, chunk_recipes)``, but a different (bigger)
        world than any object-path call could produce.

        Args:
            path: Target columnar file (conventionally ``*.col``).
            region_codes: Regions to include (default: all 25).
            scale: Multiplier on every region's Table I recipe count.
            min_recipes: Per-region floor after scaling.
            chunk_recipes: Recipes sampled and flushed per chunk — the
                memory bound.
            store_text: Keep procedural titles in the container.
            bitplanes: Build per-cuisine packed-bit mining planes.

        Returns:
            The opened :class:`~repro.storage.columnar.ColumnarCorpus`.
        """
        from repro.storage.columnar import ColumnarCorpus, ColumnarWriter

        if scale <= 0:
            raise SynthesisError(f"scale must be > 0, got {scale}")
        if chunk_recipes < 1:
            raise SynthesisError(
                f"chunk_recipes must be >= 1, got {chunk_recipes}"
            )
        codes = (
            tuple(region.code for region in REGIONS)
            if region_codes is None
            else tuple(get_region(code).code for code in region_codes)
        )
        next_id = 0
        with ColumnarWriter(
            path, store_text=store_text, bitplanes=bitplanes
        ) as writer:
            for code in codes:
                region = get_region(code)
                count = max(int(round(region.n_recipes * scale)), min_recipes)
                blueprint = self.blueprint(code)
                if count <= chunk_recipes:
                    chunks = [(self._region_rng(region, "recipes"), 0, count)]
                else:
                    chunks = [
                        (
                            self._region_rng(region, f"recipes/{index}"),
                            offset,
                            min(chunk_recipes, count - offset),
                        )
                        for index, offset in enumerate(
                            range(0, count, chunk_recipes)
                        )
                    ]
                for rng, offset, take in chunks:
                    lengths, flat_ids, recipe_ids, titles = (
                        self._cuisine_arrays(
                            blueprint,
                            rng,
                            take,
                            next_id + offset,
                            row_offset=offset,
                        )
                    )
                    writer.add_chunk(
                        region.code,
                        lengths,
                        flat_ids,
                        recipe_ids,
                        titles=titles if store_text else None,
                    )
                next_id += count
        return ColumnarCorpus.open(path)

    # ------------------------------------------------------------------
    # Raw (website-style) generation
    # ------------------------------------------------------------------

    def generate_raw_cuisine(
        self,
        region_code: str,
        n_recipes: int | None = None,
        start_raw_id: int = 0,
    ) -> list[RawRecipe]:
        """Generate raw website-style records for one cuisine.

        Ingredient sets come from the same process as
        :meth:`generate_cuisine`; each ingredient is rendered as a messy
        free-text mention and the record carries continent/region/country
        annotation plus a source website drawn with the published
        per-source proportions.
        """
        region = get_region(region_code)
        recipes = self.generate_cuisine(region_code, n_recipes=n_recipes)
        rng = self._region_rng(region, "raw")
        renderer = MentionRenderer(
            seed=derive_seed(rng), validate_with=self._lexicon.resolver
        )
        source_keys = [source.key for source in SOURCES]
        source_probs = np.array([source.n_recipes for source in SOURCES], dtype=float)
        source_probs /= source_probs.sum()

        raw_records = []
        for offset, recipe in enumerate(recipes):
            ingredients = [
                self._lexicon.by_id(ingredient_id)
                for ingredient_id in recipe.ingredient_ids
            ]
            raw_records.append(
                RawRecipe(
                    raw_id=start_raw_id + offset,
                    title=recipe.title,
                    mentions=renderer.render_all(ingredients),
                    continent=region.continent,
                    region=region.code,
                    country=region.name,
                    source=source_keys[int(rng.choice(len(source_keys), p=source_probs))],
                    instructions="Combine all ingredients and cook.",
                )
            )
        return raw_records


def generate_world_corpus(
    lexicon: Lexicon,
    seed: SeedLike = 0,
    scale: float = 1.0,
    region_codes: tuple[str, ...] | None = None,
) -> RecipeDataset:
    """One-call convenience wrapper around :class:`WorldKitchen`."""
    return WorldKitchen(lexicon, seed=seed).generate_dataset(
        region_codes=region_codes, scale=scale
    )
