"""Synthetic corpus generation (the data substitution; DESIGN.md §2)."""

from repro.synthesis.archetypes import (
    ARCHETYPES,
    REGION_PROFILES,
    CuisineProfile,
    DishArchetype,
    validate_archetypes,
)
from repro.synthesis.calibration import (
    CalibrationSummary,
    RegionCalibration,
    check_calibration,
)
from repro.synthesis.noise import MentionRenderer
from repro.synthesis.popularity import (
    gumbel_topk,
    truncated_normal_sizes,
    zipf_weights,
)
from repro.synthesis.worldgen import (
    CuisineBlueprint,
    WorldKitchen,
    generate_world_corpus,
)

__all__ = [
    "ARCHETYPES",
    "REGION_PROFILES",
    "CuisineProfile",
    "DishArchetype",
    "validate_archetypes",
    "CalibrationSummary",
    "RegionCalibration",
    "check_calibration",
    "MentionRenderer",
    "gumbel_topk",
    "truncated_normal_sizes",
    "zipf_weights",
    "CuisineBlueprint",
    "WorldKitchen",
    "generate_world_corpus",
]
