"""The :class:`Lexicon` container — the standardized ingredient dictionary.

Mirrors the role of the paper's FlavorDB-derived lexicon: a fixed set of
entities with categories and aliases, plus fast lookups by id, name and
category, and a bound :class:`~repro.lexicon.aliasing.AliasResolver`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import LexiconError, UnknownIngredientError
from repro.lexicon.aliasing import AliasResolver, Resolution
from repro.lexicon.categories import Category, parse_category
from repro.lexicon.ingredient import Ingredient

__all__ = ["Lexicon"]


class Lexicon:
    """An immutable collection of ingredient entities with fast lookups.

    Instances are normally obtained from
    :func:`repro.lexicon.builder.build_standard_lexicon` (the paper's
    721-entity dictionary) but any collection of
    :class:`~repro.lexicon.ingredient.Ingredient` records works, which the
    test-suite uses to build small fixture lexicons.
    """

    def __init__(self, ingredients: Iterable[Ingredient]):
        self._by_id: dict[int, Ingredient] = {}
        self._by_name: dict[str, Ingredient] = {}
        self._by_category: dict[Category, list[Ingredient]] = {
            category: [] for category in Category
        }
        for ingredient in ingredients:
            if ingredient.ingredient_id in self._by_id:
                raise LexiconError(
                    f"duplicate ingredient id {ingredient.ingredient_id}"
                )
            if ingredient.name in self._by_name:
                raise LexiconError(f"duplicate ingredient name {ingredient.name!r}")
            self._by_id[ingredient.ingredient_id] = ingredient
            self._by_name[ingredient.name] = ingredient
            self._by_category[ingredient.category].append(ingredient)
        self._resolver = AliasResolver(self._by_id.values())
        self._validate_components()

    def _validate_components(self) -> None:
        for ingredient in self._by_id.values():
            for component in ingredient.components:
                if component not in self._by_name:
                    raise LexiconError(
                        f"compound {ingredient.name!r} references unknown "
                        f"component {component!r}"
                    )

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Ingredient]:
        return iter(sorted(self._by_id.values(), key=lambda i: i.ingredient_id))

    def __contains__(self, key: object) -> bool:
        if isinstance(key, Ingredient):
            return key.ingredient_id in self._by_id
        if isinstance(key, int):
            return key in self._by_id
        if isinstance(key, str):
            return key in self._by_name
        return False

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def by_id(self, ingredient_id: int) -> Ingredient:
        """Return the entity with the given id.

        Raises:
            UnknownIngredientError: If no entity has this id.
        """
        try:
            return self._by_id[ingredient_id]
        except KeyError:
            raise UnknownIngredientError(str(ingredient_id)) from None

    def by_name(self, name: str) -> Ingredient:
        """Return the entity with the given canonical name.

        Raises:
            UnknownIngredientError: If the name is not canonical.  Use
            :meth:`resolve` for alias-aware lookup of raw mentions.
        """
        try:
            return self._by_name[name.strip().lower()]
        except KeyError:
            raise UnknownIngredientError(name) from None

    def get(self, name: str) -> Ingredient | None:
        """Like :meth:`by_name` but returns ``None`` when missing."""
        return self._by_name.get(name.strip().lower())

    def by_category(self, category: Category | str) -> tuple[Ingredient, ...]:
        """All entities in a category, ordered by id."""
        cat = parse_category(category)
        return tuple(
            sorted(self._by_category[cat], key=lambda i: i.ingredient_id)
        )

    def resolve(self, mention: str) -> Resolution:
        """Resolve a raw ingredient mention through the aliasing protocol."""
        return self._resolver.resolve(mention)

    @property
    def resolver(self) -> AliasResolver:
        return self._resolver

    # ------------------------------------------------------------------
    # Views and statistics
    # ------------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """All canonical names, ordered by id."""
        return tuple(i.name for i in self)

    @property
    def ids(self) -> tuple[int, ...]:
        """All ids, ascending."""
        return tuple(sorted(self._by_id))

    @property
    def simple_ingredients(self) -> tuple[Ingredient, ...]:
        return tuple(i for i in self if not i.is_compound)

    @property
    def compound_ingredients(self) -> tuple[Ingredient, ...]:
        return tuple(i for i in self if i.is_compound)

    def category_of(self, ingredient_id: int) -> Category:
        """Category of the entity with the given id."""
        return self.by_id(ingredient_id).category

    def category_sizes(self) -> dict[Category, int]:
        """Number of entities per category."""
        return {
            category: len(members)
            for category, members in self._by_category.items()
        }

    def id_to_category_array(self) -> dict[int, Category]:
        """Mapping id -> category for bulk analytics."""
        return {i.ingredient_id: i.category for i in self._by_id.values()}

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_records(self) -> list[dict]:
        """Plain-dict records, suitable for JSON serialization."""
        return [
            {
                "ingredient_id": i.ingredient_id,
                "name": i.name,
                "category": i.category.value,
                "aliases": list(i.aliases),
                "is_compound": i.is_compound,
                "components": list(i.components),
                "curated": i.curated,
            }
            for i in self
        ]

    @classmethod
    def from_records(cls, records: Sequence[Mapping]) -> "Lexicon":
        """Inverse of :meth:`to_records`."""
        return cls(
            Ingredient(
                ingredient_id=int(record["ingredient_id"]),
                name=str(record["name"]),
                category=parse_category(record["category"]),
                aliases=tuple(record.get("aliases", ())),
                is_compound=bool(record.get("is_compound", False)),
                components=tuple(record.get("components", ())),
                curated=bool(record.get("curated", True)),
            )
            for record in records
        )

    def save(self, path: str | Path) -> None:
        """Write the lexicon to a JSON file."""
        Path(path).write_text(json.dumps(self.to_records(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "Lexicon":
        """Read a lexicon previously written by :meth:`save`."""
        return cls.from_records(json.loads(Path(path).read_text()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        n_compound = len(self.compound_ingredients)
        return (
            f"Lexicon({len(self)} entities: {len(self) - n_compound} simple, "
            f"{n_compound} compound)"
        )
