"""Ingredient entity model.

A lexicon *entity* is either a simple ingredient ("tomato") or a compound
ingredient ("tomato puree") composed of simple ones — Sec. II of the paper
adds 96 such compounds to the FlavorDB base lexicon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lexicon.categories import Category

__all__ = ["Ingredient"]


@dataclass(frozen=True)
class Ingredient:
    """A standardized lexicon entity.

    Attributes:
        ingredient_id: Stable integer id, unique within a lexicon.  Ids are
            assigned deterministically by the builder (sorted by name), so a
            given lexicon version always yields the same ids.
        name: Canonical lowercase singular name (e.g. ``"soybean sauce"``).
        category: One of the paper's 21 categories.
        aliases: Alternative surface forms resolving to this entity.  Does
            not include forms derivable by normalization (plurals etc.),
            which the aliasing protocol handles on the fly.
        is_compound: True for one of the 96 compound ingredients.
        components: Canonical names of constituent ingredients (empty for
            simple ingredients; components may themselves be compounds,
            e.g. hummus contains tahini).
        curated: False for deterministically generated long-tail entities
            minted by the builder to reach the paper's exact lexicon size.
    """

    ingredient_id: int
    name: str
    category: Category
    aliases: tuple[str, ...] = ()
    is_compound: bool = False
    components: tuple[str, ...] = ()
    curated: bool = True

    def __post_init__(self) -> None:
        if not self.name or self.name != self.name.strip().lower():
            raise ValueError(
                f"ingredient name must be non-empty lowercase, got {self.name!r}"
            )
        if self.is_compound and not self.components:
            raise ValueError(f"compound ingredient {self.name!r} has no components")
        if not self.is_compound and self.components:
            raise ValueError(
                f"simple ingredient {self.name!r} must not declare components"
            )

    @property
    def surface_forms(self) -> tuple[str, ...]:
        """The canonical name followed by all aliases."""
        return (self.name, *self.aliases)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name
