"""Deterministic construction of the standard 721-entity lexicon.

The paper's lexicon has exactly 721 entities: a FlavorDB-derived base of
625 simple ingredients plus 96 added compound ingredients, each manually
assigned one of 21 categories (Sec. II).  This builder assembles our
curated equivalent to those exact counts:

* curated simple ingredients are taken in deterministic (category, list)
  order; if there are more than the target, unprotected long-tail entries
  are trimmed from the end (never below a per-category floor); if fewer,
  distinct modifier+name variants are minted;
* curated compound ingredients are used as-is and padded with
  fruit-preserve style compounds if short.

The result is identical across runs and platforms — no randomness is
involved — so ingredient ids are stable.
"""

from __future__ import annotations

from functools import lru_cache

from repro.config import PAPER
from repro.errors import LexiconError
from repro.lexicon import _seed_data as seed
from repro.lexicon.aliasing import normalize_mention
from repro.lexicon.categories import Category, parse_category
from repro.lexicon.ingredient import Ingredient
from repro.lexicon.lexicon import Lexicon

__all__ = [
    "build_standard_lexicon",
    "standard_lexicon",
    "N_SIMPLE_TARGET",
    "N_COMPOUND_TARGET",
    "MIN_CATEGORY_SIZE",
]

#: Paper-exact targets: 625 simple + 96 compound = 721 entities.
N_COMPOUND_TARGET = PAPER.n_compound_ingredients
N_SIMPLE_TARGET = PAPER.n_lexicon_entities - N_COMPOUND_TARGET

#: Trimming never reduces a category below this many simple entities, so
#: category-restricted operations (CM-C mutation, Fig. 2) stay meaningful.
MIN_CATEGORY_SIZE = 6


def _curated_simple() -> list[tuple[str, Category]]:
    """Curated (name, category) pairs in deterministic seed order."""
    pairs: list[tuple[str, Category]] = []
    seen: set[str] = set()
    for category_value, names in seed.CURATED_SIMPLE.items():
        category = parse_category(category_value)
        for name in names:
            if name in seen:
                raise LexiconError(f"duplicate curated simple name {name!r}")
            seen.add(name)
            pairs.append((name, category))
    return pairs


def _protected_names() -> set[str]:
    """Names that trimming must preserve."""
    protected = set(seed.PROTECTED_NAMES)
    protected.update(seed.CURATED_ALIASES)
    for _name, _category, components in seed.CURATED_COMPOUNDS:
        protected.update(components)
    protected.update(seed.PAD_COMPOUND_BASES)
    return protected


def _trim_simple(
    pairs: list[tuple[str, Category]], target: int
) -> list[tuple[str, Category]]:
    """Drop unprotected tail entries until ``len(pairs) == target``."""
    protected = _protected_names()
    counts: dict[Category, int] = {}
    for _name, category in pairs:
        counts[category] = counts.get(category, 0) + 1

    keep = [True] * len(pairs)
    excess = len(pairs) - target
    for index in range(len(pairs) - 1, -1, -1):
        if excess == 0:
            break
        name, category = pairs[index]
        if name in protected or counts[category] <= MIN_CATEGORY_SIZE:
            continue
        keep[index] = False
        counts[category] -= 1
        excess -= 1
    if excess > 0:
        raise LexiconError(
            f"cannot trim curated lexicon to {target} simple entities: "
            f"{excess} entries over target are all protected"
        )
    return [pair for pair, kept in zip(pairs, keep) if kept]


def _pad_simple(
    pairs: list[tuple[str, Category]],
    target: int,
    taken_forms: set[str],
) -> list[tuple[str, Category]]:
    """Mint modifier+name variants until ``len(pairs) == target``."""
    result = list(pairs)
    base_pool = list(pairs)  # modifiers apply to curated names only
    for modifier in seed.PAD_MODIFIERS:
        if len(result) >= target:
            break
        for base_name, category in base_pool:
            if len(result) >= target:
                break
            candidate = f"{modifier} {base_name}"
            form = normalize_mention(candidate)
            if not form or form in taken_forms:
                continue
            taken_forms.add(form)
            result.append((candidate, category))
    if len(result) < target:
        raise LexiconError(
            f"padding vocabulary exhausted at {len(result)} < {target}"
        )
    return result


def _pad_compounds(
    compounds: list[tuple[str, Category, tuple[str, ...]]],
    target: int,
    taken_forms: set[str],
) -> list[tuple[str, Category, tuple[str, ...]]]:
    """Mint fruit-preserve style compounds until the target is reached."""
    result = list(compounds)
    for suffix, category_value in seed.PAD_COMPOUND_SUFFIXES:
        if len(result) >= target:
            break
        category = parse_category(category_value)
        for base in seed.PAD_COMPOUND_BASES:
            if len(result) >= target:
                break
            candidate = f"{base} {suffix}"
            form = normalize_mention(candidate)
            if not form or form in taken_forms:
                continue
            taken_forms.add(form)
            result.append((candidate, category, (base,)))
    if len(result) < target:
        raise LexiconError(
            f"compound padding vocabulary exhausted at {len(result)} < {target}"
        )
    return result


def build_standard_lexicon(
    n_simple: int = N_SIMPLE_TARGET,
    n_compound: int = N_COMPOUND_TARGET,
) -> Lexicon:
    """Build the standard lexicon at the paper's exact entity counts.

    Args:
        n_simple: Number of simple (FlavorDB-style) entities.
        n_compound: Number of compound entities.

    Returns:
        A deterministic :class:`~repro.lexicon.lexicon.Lexicon` with
        ``n_simple + n_compound`` entities, ids assigned in sorted-name
        order (simple first, compounds after).
    """
    if n_simple < 1 or n_compound < 0:
        raise LexiconError(
            f"invalid lexicon size request: {n_simple} simple, "
            f"{n_compound} compound"
        )

    simple = _curated_simple()
    curated_count = len(simple)
    taken_forms = {normalize_mention(name) for name, _category in simple}

    if curated_count > n_simple:
        simple = _trim_simple(simple, n_simple)
    elif curated_count < n_simple:
        simple = _pad_simple(simple, n_simple, taken_forms)

    compounds = [
        (name, parse_category(category_value), tuple(components))
        for name, category_value, components in seed.CURATED_COMPOUNDS
    ]
    while len(compounds) > n_compound:
        # Drop from the tail, but never a compound that another kept
        # compound still uses as a component (e.g. mayonnaise, used by
        # tartar sauce).
        referenced = {
            component
            for _name, _category, components in compounds
            for component in components
        }
        for index in range(len(compounds) - 1, -1, -1):
            if compounds[index][0] not in referenced:
                del compounds[index]
                break
        else:
            raise LexiconError(
                f"cannot trim compounds to {n_compound}: every tail entry "
                "is referenced by another compound"
            )
    if len(compounds) < n_compound:
        compound_forms = {
            normalize_mention(name) for name, _cat, _comp in compounds
        }
        compounds = _pad_compounds(
            compounds, n_compound, taken_forms | compound_forms
        )

    simple_names = {name for name, _category in simple}
    kept_names = simple_names | {name for name, _cat, _comp in compounds}

    ingredients: list[Ingredient] = []
    next_id = 0
    curated_simple_names = {name for name, _ in _curated_simple()}
    for name, category in sorted(simple):
        aliases = tuple(seed.CURATED_ALIASES.get(name, ()))
        ingredients.append(
            Ingredient(
                ingredient_id=next_id,
                name=name,
                category=category,
                aliases=aliases,
                curated=name in curated_simple_names,
            )
        )
        next_id += 1
    curated_compound_names = {name for name, _c, _p in seed.CURATED_COMPOUNDS}
    for name, category, components in sorted(compounds):
        missing = [c for c in components if c not in kept_names]
        if missing:
            raise LexiconError(
                f"compound {name!r} references trimmed/unknown components: "
                f"{missing}"
            )
        ingredients.append(
            Ingredient(
                ingredient_id=next_id,
                name=name,
                category=category,
                aliases=tuple(seed.CURATED_ALIASES.get(name, ())),
                is_compound=True,
                components=components,
                curated=name in curated_compound_names,
            )
        )
        next_id += 1
    return Lexicon(ingredients)


@lru_cache(maxsize=2)
def standard_lexicon() -> Lexicon:
    """The cached paper-exact 721-entity lexicon."""
    return build_standard_lexicon()
