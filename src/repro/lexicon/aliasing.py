"""The ingredient-mention aliasing protocol (Sec. II).

The paper maps every raw ingredient mention in a recipe (e.g. ``"2 cups
finely chopped fresh cilantro leaves"``) onto one of the 721 standardized
lexicon entities "using the aliasing protocol as described in Bagler and
Singh".  This module reimplements that protocol as a deterministic,
testable pipeline:

1. **Normalize** — lowercase; drop punctuation, quantities, fractions and
   measurement units; singularize plural tokens.
2. **Exact match** — look the full normalized phrase up against the alias
   table (canonical names + curated aliases + derived variants).
3. **Longest-window scan** — scan every contiguous token window of the
   phrase, longest windows first (ties broken left-to-right), and return
   the first window that resolves.
4. **Descriptor stripping** — remove preparation/state descriptors
   ("chopped", "fresh", ...) and retry the exact match and window scan.

Longer surface forms always win over shorter ones ("ginger garlic paste"
resolves to the compound, never to "ginger"), which is what makes compound
ingredients recognizable at all; scanning windows *before* stripping keeps
entity names that contain descriptor-like words ("whole wheat flour",
"ground turkey") reachable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import AliasConflictError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lexicon.ingredient import Ingredient

__all__ = [
    "normalize_mention",
    "singularize",
    "AliasResolver",
    "Resolution",
    "UNIT_WORDS",
    "DESCRIPTOR_WORDS",
    "STOP_WORDS",
]

#: Measurement units and container words removed during normalization.
UNIT_WORDS: frozenset[str] = frozenset({
    "cup", "cups", "c", "tablespoon", "tablespoons", "tbsp", "tbs",
    "teaspoon", "teaspoons", "tsp", "ounce", "ounces", "oz", "pound",
    "pounds", "lb", "lbs", "gram", "grams", "g", "kg", "kilogram",
    "kilograms", "ml", "milliliter", "milliliters", "liter", "liters",
    "l", "pinch", "pinches", "dash", "dashes", "slice", "slices",
    "piece", "pieces", "can", "cans", "tin", "tins", "jar", "jars",
    "package", "packages", "packet", "packets", "bunch", "bunches",
    "stick", "sticks", "quart", "quarts", "pint", "pints", "gallon",
    "gallons", "handful", "handfuls", "sprig", "sprigs", "stalk",
    "stalks", "head", "heads", "knob", "knobs", "inch", "inches",
    "cube", "cubes", "bag", "bags", "box", "boxes", "container",
    "containers", "envelope", "envelopes", "fluid", "fl", "qt", "pt",
    "gal", "mg", "bottle", "bottles", "carton", "cartons", "scoop",
    "scoops", "wedge", "wedges", "strip", "strips", "fillet", "fillets",
    "bulb", "bulbs", "ear", "ears", "sheet", "sheets", "loaf", "loaves",
})

#: Preparation/state descriptors stripped when an exact match fails.
#: Must stay disjoint from every word used in canonical entity names so
#: stripping can never make a valid name unreachable.
DESCRIPTOR_WORDS: frozenset[str] = frozenset({
    "fresh", "freshly", "chopped", "finely", "coarsely", "roughly",
    "minced", "diced", "sliced", "thinly", "thickly", "grated",
    "shredded", "peeled", "seeded", "deseeded", "crushed", "ground",
    "roasted", "toasted", "cooked", "uncooked", "raw", "boneless",
    "skinless", "lean", "large", "small", "medium", "ripe", "frozen",
    "canned", "drained", "rinsed", "divided", "optional", "softened",
    "melted", "cold", "warm", "chilled", "dried", "halved", "quartered",
    "trimmed", "packed", "heaping", "level", "scant", "extra", "virgin",
    "whole", "crumbled", "cubed", "julienned", "zested", "squeezed",
    "beaten", "whisked", "sifted", "unsalted", "salted", "unsweetened",
    "sweetened", "reduced", "sodium", "fat", "free", "light", "dark",
    "mild", "spicy", "prepared", "instant", "quick", "thawed", "torn",
    "stemmed", "pitted", "shelled", "deveined", "boiled", "steamed",
    "grilled", "baked", "fried", "sauteed", "blanched", "pureed",
    "mashed", "additional", "more", "plus", "garnish", "serving",
    "needed", "room", "temperature", "firmly", "lightly", "coarse",
    "fine", "finely",
})

#: Grammatical filler removed during normalization.
STOP_WORDS: frozenset[str] = frozenset({
    "of", "a", "an", "the", "to", "for", "into", "in", "at", "about",
    "approximately", "or", "as", "with", "without", "such", "each",
    "taste", "your", "choice", "preferably", "if", "desired", "per",
    "plus", "few", "some", "any",
})

#: Words that must never be singularized by the trailing-``s`` rule.
_SINGULARIZE_EXCEPTIONS: frozenset[str] = frozenset({
    "molasses", "asparagus", "hummus", "couscous", "swiss", "grits",
    "citrus", "watercress", "brussels", "hibiscus", "octopus", "dulse",
    "nopales", "caesar", "calamansi", "lemongrass", "gas",
    "bass", "haggis", "is", "its", "this", "les", "pancreas",
})

_NUMBER_RE = re.compile(
    r"""
    (?:\d+\s*/\s*\d+)      # fractions: 1/2
    | (?:\d+(?:\.\d+)?)    # integers and decimals
    | [¼-¾⅐-⅞]  # unicode vulgar fractions
    """,
    re.VERBOSE,
)
_PUNCT_RE = re.compile(r"[^\w\s]")
_WS_RE = re.compile(r"\s+")
_PAREN_RE = re.compile(r"\([^)]*\)")


#: Irregular ``-ves`` plurals that do not simply drop the trailing ``s``
#: ("chives"/"olives"/"cloves" do; these do not).
_VES_IRREGULARS: dict[str, str] = {
    "leaves": "leaf",
    "halves": "half",
    "loaves": "loaf",
    "calves": "calf",
    "wolves": "wolf",
    "shelves": "shelf",
    "thieves": "thief",
    "hooves": "hoof",
    "knives": "knife",
    "wives": "wife",
}


def singularize(token: str) -> str:
    """Best-effort singular form of a single lowercase token.

    Handles the regular English plural patterns that appear in recipe
    text; irregulars that matter ("leaves", "tomatoes") are covered by
    explicit rules, everything exotic belongs in the alias table.
    """
    if len(token) <= 3 or token in _SINGULARIZE_EXCEPTIONS:
        return token
    irregular = _VES_IRREGULARS.get(token)
    if irregular is not None:
        return irregular
    if token.endswith("ies") and len(token) > 4:
        return token[:-3] + "y"
    if token.endswith(("ches", "shes", "sses", "xes", "zes", "oes")):
        return token[:-2]
    if token.endswith("s") and not token.endswith(("ss", "us", "is")):
        return token[:-1]
    return token


def normalize_mention(text: str) -> str:
    """Normalize a raw ingredient mention to matchable token form.

    Lowercases, removes parentheticals, punctuation, numbers and unit
    words, singularizes each remaining token, and collapses whitespace.
    Descriptors are *not* stripped here — see :class:`AliasResolver`.
    """
    text = text.lower()
    text = _PAREN_RE.sub(" ", text)
    text = _NUMBER_RE.sub(" ", text)
    text = _PUNCT_RE.sub(" ", text)
    tokens = [
        singularize(token)
        for token in _WS_RE.split(text.strip())
        if token and token not in UNIT_WORDS and token not in STOP_WORDS
    ]
    return " ".join(tokens)


@dataclass(frozen=True)
class Resolution:
    """Outcome of resolving a raw mention.

    Attributes:
        ingredient: The resolved lexicon entity, or ``None`` if unresolved.
        matched_form: The surface form that produced the match.
        normalized: The normalized mention the resolver worked on.
    """

    ingredient: Optional["Ingredient"]
    matched_form: str
    normalized: str

    @property
    def resolved(self) -> bool:
        return self.ingredient is not None


class AliasResolver:
    """Resolves raw ingredient mentions to lexicon entities.

    Built once per lexicon; resolution is pure and deterministic.
    """

    def __init__(self, ingredients: Iterable["Ingredient"]):
        self._table: dict[str, "Ingredient"] = {}
        self._max_form_tokens = 1
        for ingredient in ingredients:
            for form in ingredient.surface_forms:
                self._register(normalize_mention(form), ingredient)

    def _register(self, form: str, ingredient: "Ingredient") -> None:
        if not form:
            return
        existing = self._table.get(form)
        if existing is not None and existing.name != ingredient.name:
            raise AliasConflictError(form, existing.name, ingredient.name)
        self._table[form] = ingredient
        self._max_form_tokens = max(self._max_form_tokens, form.count(" ") + 1)

    def __len__(self) -> int:
        return len(self._table)

    def known_forms(self) -> frozenset[str]:
        """All normalized surface forms the resolver can match exactly."""
        return frozenset(self._table)

    def lookup(self, form: str) -> Optional["Ingredient"]:
        """Exact lookup of an already-normalized form."""
        return self._table.get(form)

    def resolve(self, mention: str) -> Resolution:
        """Resolve a raw mention through the full protocol.

        Args:
            mention: Raw ingredient text as it appears in a recipe.

        Returns:
            A :class:`Resolution`; ``resolution.ingredient`` is ``None``
            when no lexicon entity matches.
        """
        normalized = normalize_mention(mention)
        if not normalized:
            return Resolution(None, "", normalized)

        # Stage 2: exact match on the full phrase.
        hit = self._table.get(normalized)
        if hit is not None:
            return Resolution(hit, normalized, normalized)

        # Stage 3: longest contiguous window, left-to-right — before any
        # stripping, so entity names containing descriptor-like words
        # ("whole wheat flour") beat their stripped shadows.
        tokens = normalized.split(" ")
        hit, candidate = self._scan_windows(tokens)
        if hit is not None:
            return Resolution(hit, candidate, normalized)

        # Stage 4: strip descriptors, retry exact then windows.
        stripped = [t for t in tokens if t not in DESCRIPTOR_WORDS]
        if stripped and stripped != tokens:
            candidate = " ".join(stripped)
            hit = self._table.get(candidate)
            if hit is not None:
                return Resolution(hit, candidate, normalized)
            hit, candidate = self._scan_windows(stripped)
            if hit is not None:
                return Resolution(hit, candidate, normalized)
        return Resolution(None, "", normalized)

    def _scan_windows(
        self, tokens: list[str]
    ) -> tuple[Optional["Ingredient"], str]:
        """First table hit over contiguous windows, longest first."""
        n = len(tokens)
        max_window = min(n, self._max_form_tokens)
        for width in range(max_window, 0, -1):
            for start in range(0, n - width + 1):
                candidate = " ".join(tokens[start:start + width])
                hit = self._table.get(candidate)
                if hit is not None:
                    return hit, candidate
        return None, ""

    def resolve_many(self, mentions: Iterable[str]) -> list[Resolution]:
        """Resolve several mentions; order preserved."""
        return [self.resolve(mention) for mention in mentions]
