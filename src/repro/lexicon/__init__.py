"""Standardized ingredient lexicon (Sec. II substrate).

Public surface:

* :class:`~repro.lexicon.categories.Category` — the paper's 21 categories.
* :class:`~repro.lexicon.ingredient.Ingredient` — a lexicon entity.
* :class:`~repro.lexicon.lexicon.Lexicon` — the entity collection.
* :func:`~repro.lexicon.builder.standard_lexicon` — the paper-exact
  721-entity dictionary (625 simple + 96 compound).
* :class:`~repro.lexicon.aliasing.AliasResolver` and
  :func:`~repro.lexicon.aliasing.normalize_mention` — the aliasing
  protocol used to map raw recipe mentions onto entities.
"""

from repro.lexicon.aliasing import (
    AliasResolver,
    Resolution,
    normalize_mention,
    singularize,
)
from repro.lexicon.builder import build_standard_lexicon, standard_lexicon
from repro.lexicon.categories import (
    CATEGORY_INFO,
    CORE_CATEGORIES,
    Category,
    CategoryInfo,
    parse_category,
)
from repro.lexicon.ingredient import Ingredient
from repro.lexicon.lexicon import Lexicon

__all__ = [
    "AliasResolver",
    "Resolution",
    "normalize_mention",
    "singularize",
    "build_standard_lexicon",
    "standard_lexicon",
    "Category",
    "CategoryInfo",
    "CATEGORY_INFO",
    "CORE_CATEGORIES",
    "parse_category",
    "Ingredient",
    "Lexicon",
]
