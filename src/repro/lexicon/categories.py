"""The 21 ingredient categories used by the paper (Sec. II).

The paper manually assigns every lexicon entity to exactly one of these
categories.  We model them as an enum plus a small metadata record used by
the synthesis subsystem (pantry role) and by Fig. 2 (display order).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import UnknownCategoryError

__all__ = ["Category", "CategoryInfo", "CATEGORY_INFO", "parse_category", "CORE_CATEGORIES"]


class Category(enum.Enum):
    """One of the paper's 21 manually assigned ingredient categories."""

    VEGETABLE = "Vegetable"
    DAIRY = "Dairy"
    LEGUME = "Legume"
    MAIZE = "Maize"
    CEREAL = "Cereal"
    MEAT = "Meat"
    NUTS_AND_SEEDS = "Nuts and Seeds"
    PLANT = "Plant"
    FISH = "Fish"
    SEAFOOD = "Seafood"
    SPICE = "Spice"
    BAKERY = "Bakery"
    BEVERAGE_ALCOHOLIC = "Beverage Alcoholic"
    BEVERAGE = "Beverage"
    ESSENTIAL_OIL = "Essential Oil"
    FLOWER = "Flower"
    FRUIT = "Fruit"
    FUNGUS = "Fungus"
    HERB = "Herb"
    ADDITIVE = "Additive"
    DISH = "Dish"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class CategoryInfo:
    """Display/synthesis metadata for a category.

    Attributes:
        category: The category this record describes.
        display_order: Position used when rendering Fig. 2-style outputs.
        staple_weight: Relative propensity for ingredients of this category
            to appear in a generic recipe (used as a synthesis prior; the
            paper observes that Vegetable, Additive, Spice, Dairy, Herb,
            Plant and Fruit are used "more frequently than other
            categories").
    """

    category: Category
    display_order: int
    staple_weight: float


#: Display order follows the paper's observation: the seven dominant
#: categories first, then the remainder alphabetically.
_ORDERED: list[tuple[Category, float]] = [
    (Category.VEGETABLE, 2.2),
    (Category.ADDITIVE, 2.0),
    (Category.SPICE, 1.7),
    (Category.DAIRY, 1.5),
    (Category.HERB, 1.3),
    (Category.PLANT, 1.1),
    (Category.FRUIT, 1.0),
    (Category.CEREAL, 0.7),
    (Category.MEAT, 0.7),
    (Category.BAKERY, 0.35),
    (Category.BEVERAGE, 0.3),
    (Category.BEVERAGE_ALCOHOLIC, 0.25),
    (Category.DISH, 0.2),
    (Category.ESSENTIAL_OIL, 0.1),
    (Category.FISH, 0.35),
    (Category.FLOWER, 0.1),
    (Category.FUNGUS, 0.3),
    (Category.LEGUME, 0.45),
    (Category.MAIZE, 0.3),
    (Category.NUTS_AND_SEEDS, 0.5),
    (Category.SEAFOOD, 0.3),
]

CATEGORY_INFO: dict[Category, CategoryInfo] = {
    category: CategoryInfo(category=category, display_order=i, staple_weight=weight)
    for i, (category, weight) in enumerate(_ORDERED)
}

#: The seven categories the paper singles out as used "more frequently than
#: other categories" across all cuisines (Sec. III / Fig. 2).
CORE_CATEGORIES: tuple[Category, ...] = (
    Category.VEGETABLE,
    Category.ADDITIVE,
    Category.SPICE,
    Category.DAIRY,
    Category.HERB,
    Category.PLANT,
    Category.FRUIT,
)

_BY_VALUE = {category.value.lower(): category for category in Category}
_BY_NAME = {category.name.lower(): category for category in Category}


def parse_category(text: str | Category) -> Category:
    """Resolve ``text`` to a :class:`Category`.

    Accepts the display value (``"Nuts and Seeds"``), the enum name
    (``"NUTS_AND_SEEDS"``), or an existing :class:`Category` instance, in a
    case-insensitive manner.

    Raises:
        UnknownCategoryError: If the text matches no category.
    """
    if isinstance(text, Category):
        return text
    key = str(text).strip().lower()
    found = _BY_VALUE.get(key) or _BY_NAME.get(key)
    if found is None:
        found = _BY_VALUE.get(key.replace("_", " ")) or _BY_NAME.get(key.replace(" ", "_"))
    if found is None:
        raise UnknownCategoryError(str(text))
    return found
