"""repro — reproduction of "Computational Models for the Evolution of
World Cuisines" (Tuwani, Sahoo, Singh & Bagler, ICDE 2019).

Quickstart::

    from repro import standard_lexicon, WorldKitchen
    from repro import CuisineSpec, create_model, run_ensemble
    from repro import combination_curve, curve_distance

    lexicon = standard_lexicon()
    corpus = WorldKitchen(lexicon, seed=0).generate_dataset(scale=0.05)
    spec = CuisineSpec.from_view(corpus.cuisine("ITA"), lexicon)
    ensemble = run_ensemble(create_model("CM-R"), spec, n_runs=10, seed=1)
    empirical, _ = combination_curve(corpus, "ITA", lexicon)
    print(curve_distance(empirical, ensemble.ingredient_curve))

Subpackages: :mod:`repro.lexicon` (ingredient dictionary + aliasing),
:mod:`repro.corpus` (recipes, regions, ETL), :mod:`repro.storage`
(indexes/queries), :mod:`repro.synthesis` (calibrated corpus generator),
:mod:`repro.flavor` (FlavorDB stand-in), :mod:`repro.analysis` (Secs.
III-IV metrics and mining), :mod:`repro.models` (Sec. V evolution
models), :mod:`repro.experiments` (per-table/figure drivers),
:mod:`repro.runtime` (parallel ensemble execution + run caching).
"""

from repro.analysis import (
    analyze_invariants,
    available_algorithms,
    combination_curve,
    curve_distance,
    mine_frequent_itemsets,
    overrepresentation_scores,
    pairwise_distance_matrix,
    top_overrepresented,
)
from repro.config import DEFAULT_MINING, PAPER, MiningConfig, PaperConstants
from repro.corpus import (
    RawRecipe,
    Recipe,
    RecipeDataset,
    Region,
    compile_corpus,
    corpus_stats,
    get_region,
    iter_regions,
    load_jsonl,
    save_jsonl,
)
from repro.errors import ReproError
from repro.generation import (
    GeneratedRecipe,
    GenerationConstraints,
    RecipeGenerator,
)
from repro.lexicon import (
    Category,
    Ingredient,
    Lexicon,
    build_standard_lexicon,
    standard_lexicon,
)
from repro.models import (
    CopyMutateCategory,
    CopyMutateMixture,
    CopyMutateRandom,
    CuisineSpec,
    ModelParams,
    NullModel,
    PAPER_MODELS,
    create_model,
    run_ensemble,
)
from repro.nutrition import (
    NutritionTable,
    build_nutrition_table,
    health_score,
    nutrition_fitness,
)
from repro.runtime import (
    CurveCache,
    RunCache,
    RuntimeConfig,
    execute_runs,
    get_executor,
    parallel_map,
)
from repro.storage import RecipeStore
from repro.synthesis import WorldKitchen, generate_world_corpus

__version__ = "1.0.0"

__all__ = [
    "analyze_invariants",
    "available_algorithms",
    "combination_curve",
    "curve_distance",
    "mine_frequent_itemsets",
    "overrepresentation_scores",
    "pairwise_distance_matrix",
    "top_overrepresented",
    "DEFAULT_MINING",
    "PAPER",
    "MiningConfig",
    "PaperConstants",
    "RawRecipe",
    "Recipe",
    "RecipeDataset",
    "Region",
    "compile_corpus",
    "corpus_stats",
    "get_region",
    "iter_regions",
    "load_jsonl",
    "save_jsonl",
    "ReproError",
    "GeneratedRecipe",
    "GenerationConstraints",
    "RecipeGenerator",
    "NutritionTable",
    "build_nutrition_table",
    "health_score",
    "nutrition_fitness",
    "Category",
    "Ingredient",
    "Lexicon",
    "build_standard_lexicon",
    "standard_lexicon",
    "CopyMutateCategory",
    "CopyMutateMixture",
    "CopyMutateRandom",
    "CuisineSpec",
    "ModelParams",
    "NullModel",
    "PAPER_MODELS",
    "create_model",
    "run_ensemble",
    "CurveCache",
    "RunCache",
    "RuntimeConfig",
    "execute_runs",
    "get_executor",
    "parallel_map",
    "RecipeStore",
    "WorldKitchen",
    "generate_world_corpus",
    "__version__",
]
