"""Indexed recipe storage: inverted indexes, stores and conjunctive queries."""

from repro.storage.inverted_index import InvertedIndex, intersect_postings
from repro.storage.query import (
    Clause,
    HasCategory,
    HasIngredient,
    Query,
    SizeBetween,
)
from repro.storage.store import RecipeStore

__all__ = [
    "InvertedIndex",
    "intersect_postings",
    "Clause",
    "HasCategory",
    "HasIngredient",
    "Query",
    "SizeBetween",
    "RecipeStore",
]
