"""Indexed recipe storage: inverted indexes, stores, conjunctive queries
and the memory-mapped columnar corpus container (DESIGN.md §11)."""

from repro.storage.columnar import (
    COLUMNAR_FORMAT_VERSION,
    COLUMNAR_SUFFIX,
    ColumnarCorpus,
    ColumnarDiskStats,
    ColumnarRecipeStore,
    ColumnarWriter,
    PackedTransactions,
    PlaneStats,
    pack_dataset,
)
from repro.storage.inverted_index import (
    InvertedIndex,
    intersect_pair,
    intersect_postings,
)
from repro.storage.query import (
    Clause,
    HasCategory,
    HasIngredient,
    Query,
    SizeBetween,
)
from repro.storage.store import RecipeStore

__all__ = [
    "COLUMNAR_FORMAT_VERSION",
    "COLUMNAR_SUFFIX",
    "ColumnarCorpus",
    "ColumnarDiskStats",
    "ColumnarRecipeStore",
    "ColumnarWriter",
    "PackedTransactions",
    "PlaneStats",
    "pack_dataset",
    "InvertedIndex",
    "intersect_pair",
    "intersect_postings",
    "Clause",
    "HasCategory",
    "HasIngredient",
    "Query",
    "SizeBetween",
    "RecipeStore",
]
