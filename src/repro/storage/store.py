"""Indexed recipe store.

Combines per-cuisine inverted indexes with the lexicon's category map to
answer the query shapes the paper's analyses need (supports, document
frequencies, category projections) without rescanning recipes.  Built
once per dataset and shared by the analysis modules.
"""

from __future__ import annotations

from itertools import chain
from typing import Iterable

import numpy as np

from repro.corpus.dataset import CuisineView, RecipeDataset
from repro.errors import StorageError
from repro.lexicon.categories import Category
from repro.lexicon.lexicon import Lexicon
from repro.storage.inverted_index import InvertedIndex

__all__ = ["RecipeStore"]


class RecipeStore:
    """A dataset wrapped with per-cuisine and global indexes.

    Args:
        dataset: The standardized recipe corpus.
        lexicon: Lexicon providing the category map.  Recipes may only
            reference ids present in the lexicon.
    """

    def __init__(self, dataset: RecipeDataset, lexicon: Lexicon):
        self._dataset = dataset
        self._lexicon = lexicon
        # One np.isin over the concatenated id plane instead of a
        # per-recipe Python loop — the membership check is O(total ids)
        # array work, and the loop below only runs to name the first
        # offender once a violation is already known to exist.
        known = np.fromiter(lexicon.ids, dtype=np.int64, count=len(lexicon.ids))
        flat = np.fromiter(
            chain.from_iterable(r.ingredient_ids for r in dataset),
            dtype=np.int64,
        )
        if flat.size and not np.isin(flat, known).all():
            known_set = set(lexicon.ids)
            for recipe in dataset:
                unknown = [
                    i for i in recipe.ingredient_ids if i not in known_set
                ]
                if unknown:
                    raise StorageError(
                        f"recipe {recipe.recipe_id} references ids not in "
                        f"the lexicon: {unknown[:5]}"
                    )
        self._global_index = InvertedIndex(dataset.recipes)
        self._cuisine_indexes: dict[str, InvertedIndex] = {
            code: InvertedIndex(view.recipes)
            for code, view in dataset.cuisines().items()
        }

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def dataset(self) -> RecipeDataset:
        return self._dataset

    @property
    def lexicon(self) -> Lexicon:
        return self._lexicon

    @property
    def global_index(self) -> InvertedIndex:
        return self._global_index

    def region_codes(self) -> tuple[str, ...]:
        return tuple(sorted(self._cuisine_indexes))

    def cuisine_index(self, region_code: str) -> InvertedIndex:
        """The inverted index for one cuisine.

        Raises:
            StorageError: If the cuisine has no recipes in this store.
        """
        index = self._cuisine_indexes.get(region_code)
        if index is None:
            raise StorageError(f"no recipes stored for cuisine {region_code!r}")
        return index

    def cuisine_view(self, region_code: str) -> CuisineView:
        return self._dataset.cuisine(region_code)

    # ------------------------------------------------------------------
    # Support queries
    # ------------------------------------------------------------------

    def support(
        self, ingredient_ids: Iterable[int], region_code: str | None = None
    ) -> int:
        """Recipes containing all the given ingredients.

        Args:
            ingredient_ids: The conjunctive itemset.
            region_code: Restrict to one cuisine; ``None`` = whole corpus.
        """
        index = (
            self.global_index
            if region_code is None
            else self.cuisine_index(region_code)
        )
        return index.support(ingredient_ids)

    def relative_support(
        self, ingredient_ids: Iterable[int], region_code: str | None = None
    ) -> float:
        """Support as a fraction of the (cuisine's) recipe count."""
        index = (
            self.global_index
            if region_code is None
            else self.cuisine_index(region_code)
        )
        if index.n_recipes == 0:
            return 0.0
        return index.support(ingredient_ids) / index.n_recipes

    # ------------------------------------------------------------------
    # Category projections
    # ------------------------------------------------------------------

    def category_of(self, ingredient_id: int) -> Category:
        return self._lexicon.category_of(ingredient_id)

    def project_to_categories(
        self, ingredient_ids: Iterable[int]
    ) -> frozenset[Category]:
        """Distinct categories of an ingredient id collection."""
        return frozenset(
            self._lexicon.category_of(ingredient_id)
            for ingredient_id in ingredient_ids
        )

    def category_vector(self, ingredient_ids: Iterable[int]) -> dict[Category, int]:
        """Category -> count of ingredients from that category."""
        vector: dict[Category, int] = {}
        for ingredient_id in ingredient_ids:
            category = self._lexicon.category_of(ingredient_id)
            vector[category] = vector.get(category, 0) + 1
        return vector

    # ------------------------------------------------------------------
    # Co-occurrence
    # ------------------------------------------------------------------

    def cooccurrence(
        self, ingredient_id: int, region_code: str | None = None
    ) -> dict[int, int]:
        """Recipes shared with every co-occurring ingredient.

        Args:
            ingredient_id: Anchor ingredient.
            region_code: Restrict to one cuisine; ``None`` = whole corpus.

        Returns:
            other ingredient id -> number of recipes containing both.
        """
        index = (
            self.global_index
            if region_code is None
            else self.cuisine_index(region_code)
        )
        counts: dict[int, int] = {}
        for row in index.postings(ingredient_id):
            for other in index.recipe_at(int(row)).ingredient_ids:
                if other != ingredient_id:
                    counts[other] = counts.get(other, 0) + 1
        return counts

    def top_cooccurring(
        self,
        ingredient_id: int,
        k: int = 10,
        region_code: str | None = None,
    ) -> list[tuple[int, int]]:
        """The ``k`` strongest co-occurrence partners, by shared recipes.

        Deterministic ordering: count descending, id ascending.
        """
        counts = self.cooccurrence(ingredient_id, region_code=region_code)
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RecipeStore({len(self._dataset)} recipes, "
            f"{len(self._cuisine_indexes)} cuisines)"
        )
