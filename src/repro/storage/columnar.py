"""Memory-mapped columnar corpus store (DESIGN.md §11).

The object path — :class:`~repro.corpus.dataset.RecipeDataset` over
Python :class:`~repro.corpus.recipe.Recipe` tuples, whole-corpus pickles
in :mod:`repro.corpus.io` — loads everything eagerly, which is fine at
the paper's ~23k recipes per cuisine and fatal at the 100×–1000×
synthetic worlds the ROADMAP targets.  This module stores a corpus as a
handful of flat numpy *planes* in one file, opened with ``np.memmap`` so
corpus build, mining and stats stream in bounded memory:

* ``indptr``/``indices`` — CSR-style ragged ingredient-id arrays: recipe
  ``r``'s sorted ids are ``indices[indptr[r]:indptr[r + 1]]``.
  ``indices`` is int32; ``indptr`` is int32 while the total item count
  fits and promotes to int64 above ``2**31 - 1`` occurrences.
* ``recipe_ids`` (int64) and ``region_index`` (uint16, indexing the
  footer's region-code table) — per-recipe identity, preserving the
  exact dataset order so the round trip is lossless.
* ``title_offsets``/``title_bytes`` (and ``source_*``) — optional UTF-8
  blob planes for the carried text fields.
* ``bititems:<code>``/``bits:<code>`` — optional per-cuisine packed-bit
  transaction planes in exactly the PR-5 ``np.packbits`` layout of
  :mod:`repro.analysis.itemsets_bitset` (row = ingredient, bit =
  recipe membership), so the bitset miner reads them zero-copy without
  round-tripping through ``Recipe`` objects.

The container is a single file: planes 64-byte aligned back to back, a
JSON *footer* describing them (dtype/shape/offset plus a SHA-256 per
plane and :data:`COLUMNAR_FORMAT_VERSION`), and a fixed trailer holding
the footer's offset and digest.  Writes follow the §9 checkpoint
conventions — staged to temp files, assembled, fsynced and atomically
renamed into place — so a crashed packer leaves an orphan temp, never a
readable half-corpus.  A file whose trailer, footer or (under
``verify=True``) plane digests fail validation is **quarantined**
(renamed to ``*.bad``, recorded via
:func:`repro.runtime.integrity.record_corruption`) instead of parsed
into garbage.

Memmap lifetime rule: every array a :class:`ColumnarCorpus` hands out is
a read-only view into the mapping — keep the corpus open while you use
them, and treat them as immutable.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.corpus.dataset import CuisineView, RecipeDataset
from repro.corpus.recipe import Recipe
from repro.corpus.stats import CorpusStats, CuisineStats
from repro.errors import EmptyCorpusError, StorageError
from repro.lexicon.lexicon import Lexicon
from repro.runtime.integrity import record_corruption
from repro.storage.inverted_index import InvertedIndex
from repro.storage.store import RecipeStore

__all__ = [
    "COLUMNAR_FORMAT_VERSION",
    "COLUMNAR_SUFFIX",
    "ColumnarCorpus",
    "ColumnarDiskStats",
    "ColumnarRecipeStore",
    "ColumnarWriter",
    "PackedTransactions",
    "PlaneStats",
    "pack_dataset",
]

#: Bump when the plane set, the footer layout or any plane's encoding
#: changes; older files are then rejected as ``format-version``
#: mismatches instead of being misread.
COLUMNAR_FORMAT_VERSION = 1

#: Conventional file extension for packed corpora.
COLUMNAR_SUFFIX = ".col"

#: Leading file magic (identifies the container before any parsing).
_MAGIC = b"RPCOL\x00\x01\n"

#: Trailer magic, offset, length and footer digest — fixed size so the
#: reader can always find the footer from the end of the file.
_TRAILER_MAGIC = b"RPCOLEND"
_TRAILER_SIZE = 8 + 8 + 8 + 32

#: Plane start alignment within the container.
_ALIGN = 64

#: Bytes hashed/copied per step on the streaming write and verify paths.
_IO_CHUNK = 8 << 20

#: Recipes per block when building packed-bit planes and gathering
#: CSR rows — bounds peak memory to ``n_items × _COL_BLOCK`` booleans.
_COL_BLOCK = 1 << 16


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _sha256_array(array: np.ndarray) -> str:
    """Streaming SHA-256 over an array's raw bytes (memmap-friendly)."""
    hasher = hashlib.sha256()
    flat = array.reshape(-1).view(np.uint8)
    for start in range(0, flat.size, _IO_CHUNK):
        hasher.update(flat[start:start + _IO_CHUNK].tobytes())
    return hasher.hexdigest()


def _gather_csr(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Lengths and concatenated id runs for ``rows``, fully vectorized.

    Returns:
        ``(lengths, flat)`` where ``flat`` concatenates each row's
        ``indices`` slice in row order.
    """
    starts = indptr[rows].astype(np.int64, copy=False)
    lengths = (indptr[rows + 1] - indptr[rows]).astype(np.int64, copy=False)
    total = int(lengths.sum())
    if total == 0:
        return lengths, np.empty(0, dtype=indices.dtype)
    first = np.cumsum(lengths) - lengths
    positions = (
        np.arange(total, dtype=np.int64)
        - np.repeat(first, lengths)
        + np.repeat(starts, lengths)
    )
    return lengths, np.asarray(indices)[positions]


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------


class _Stage:
    """One plane staged to an append-only temp file during a write."""

    def __init__(self, path: Path, dtype: np.dtype):
        self.path = path
        self.dtype = np.dtype(dtype)
        self.count = 0
        self._handle = path.open("wb")

    def append(self, array: np.ndarray) -> None:
        data = np.ascontiguousarray(array, dtype=self.dtype)
        self._handle.write(data.tobytes())
        self.count += data.size

    def finish(self) -> np.ndarray:
        """Close the stage and memmap its contents read-only."""
        self._handle.close()
        if self.count == 0:
            return np.empty(0, dtype=self.dtype)
        return np.memmap(
            self.path, dtype=self.dtype, mode="r", shape=(self.count,)
        )

    def discard(self) -> None:
        if not self._handle.closed:
            self._handle.close()
        self.path.unlink(missing_ok=True)


class ColumnarWriter:
    """Streaming chunked writer of one columnar corpus file.

    Recipes arrive in chunks (:meth:`add_recipes` for object input,
    :meth:`add_chunk` for the array fast path the synthetic world
    generator uses); per-recipe planes are staged to temp files beside
    the target, so peak memory is bounded by the chunk size plus O(one
    int per recipe), never by the corpus.  :meth:`close` assembles the
    final container atomically (§9 conventions: temp + fsync +
    ``os.replace``).

    Args:
        path: Target file (conventionally ``*.col``).
        store_text: Write the title/source blob planes.  Costs space
            proportional to the text; disable for huge synthetic worlds
            whose titles are procedural anyway.
        bitplanes: Build per-cuisine packed-bit transaction planes at
            close (the zero-copy mining input).  Adds roughly
            ``n_cuisine_items × n_recipes / 8`` bytes per cuisine.

    Raises:
        StorageError: On invalid chunks, duplicate recipe ids, or a
            failed final assembly.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        store_text: bool = True,
        bitplanes: bool = True,
    ):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.store_text = bool(store_text)
        self.bitplanes = bool(bitplanes)
        self._closed = False
        self._region_codes: list[str] = []
        self._region_of: dict[str, int] = {}
        self._lengths: list[np.ndarray] = []
        token = f".tmp.{os.getpid()}"
        self._stages: dict[str, _Stage] = {
            "indices": _Stage(
                self.path.with_name(self.path.name + f".indices{token}"),
                np.int32,
            ),
            "recipe_ids": _Stage(
                self.path.with_name(self.path.name + f".ids{token}"),
                np.int64,
            ),
            "region_index": _Stage(
                self.path.with_name(self.path.name + f".regions{token}"),
                np.uint16,
            ),
        }
        if self.store_text:
            for field in ("title", "source"):
                self._stages[f"{field}_bytes"] = _Stage(
                    self.path.with_name(self.path.name + f".{field}{token}"),
                    np.uint8,
                )
                self._stages[f"{field}_lens"] = _Stage(
                    self.path.with_name(
                        self.path.name + f".{field}len{token}"
                    ),
                    np.int64,
                )
        self._tmp_container = self.path.with_name(self.path.name + token)

    # -- input paths ----------------------------------------------------

    def _region_row(self, region_code: str) -> int:
        row = self._region_of.get(region_code)
        if row is None:
            row = len(self._region_codes)
            if row > np.iinfo(np.uint16).max:
                raise StorageError(
                    "columnar corpus supports at most 65536 regions"
                )
            self._region_of[region_code] = row
            self._region_codes.append(region_code)
        return row

    def add_chunk(
        self,
        region_code: str,
        lengths: np.ndarray,
        flat_ids: np.ndarray,
        recipe_ids: np.ndarray,
        titles: Sequence[str] | None = None,
        sources: Sequence[str] | None = None,
    ) -> None:
        """Append one single-region chunk from flat arrays.

        Args:
            region_code: Region every recipe of the chunk belongs to.
            lengths: ``(k,)`` per-recipe ingredient counts (each >= 1).
            flat_ids: Concatenated per-recipe ingredient ids, each
                recipe's run strictly increasing (the ``Recipe``
                invariant), values in ``[0, 2**31)``.
            recipe_ids: ``(k,)`` recipe ids.
            titles: Optional per-recipe titles (required length ``k``
                when the writer stores text).
            sources: Optional per-recipe source keys.
        """
        if self._closed:
            raise StorageError("writer is closed")
        lengths = np.asarray(lengths, dtype=np.int64)
        flat_ids = np.asarray(flat_ids)
        recipe_ids = np.asarray(recipe_ids, dtype=np.int64)
        if lengths.size != recipe_ids.size:
            raise StorageError(
                f"chunk mismatch: {lengths.size} lengths vs "
                f"{recipe_ids.size} recipe ids"
            )
        if int(lengths.sum()) != flat_ids.size:
            raise StorageError(
                f"chunk mismatch: lengths sum to {int(lengths.sum())} but "
                f"{flat_ids.size} ids given"
            )
        if lengths.size and int(lengths.min()) < 1:
            raise StorageError("every recipe needs at least one ingredient")
        if flat_ids.size:
            if int(flat_ids.min()) < 0 or int(flat_ids.max()) > np.iinfo(
                np.int32
            ).max:
                raise StorageError(
                    "ingredient ids must fit int32 and be non-negative"
                )
            # Within-recipe runs must be strictly increasing; the only
            # allowed non-increase is across a recipe boundary.
            deltas = np.diff(flat_ids.astype(np.int64))
            boundary = np.cumsum(lengths)[:-1] - 1
            interior = np.ones(deltas.size, dtype=bool)
            interior[boundary[boundary < deltas.size]] = False
            if np.any(deltas[interior] <= 0):
                raise StorageError(
                    "ingredient ids must be sorted and duplicate-free "
                    "within each recipe"
                )
        row = self._region_row(region_code)
        self._lengths.append(lengths)
        self._stages["indices"].append(flat_ids.astype(np.int32, copy=False))
        self._stages["recipe_ids"].append(recipe_ids)
        self._stages["region_index"].append(
            np.full(lengths.size, row, dtype=np.uint16)
        )
        if self.store_text:
            self._append_text("title", titles, lengths.size)
            self._append_text("source", sources, lengths.size)

    def _append_text(
        self, field: str, values: Sequence[str] | None, count: int
    ) -> None:
        if values is None:
            values = [""] * count
        if len(values) != count:
            raise StorageError(
                f"chunk mismatch: {count} recipes vs {len(values)} {field}s"
            )
        encoded = [value.encode("utf-8") for value in values]
        blob = b"".join(encoded)
        self._stages[f"{field}_bytes"].append(
            np.frombuffer(blob, dtype=np.uint8)
        )
        self._stages[f"{field}_lens"].append(
            np.fromiter((len(e) for e in encoded), dtype=np.int64, count=count)
        )

    def add_recipes(
        self, recipes: Iterable[Recipe], chunk_size: int = 8192
    ) -> None:
        """Append recipes (any regions, dataset order preserved)."""
        buffer: list[Recipe] = []
        for recipe in recipes:
            buffer.append(recipe)
            if len(buffer) >= chunk_size:
                self._flush_recipes(buffer)
                buffer = []
        if buffer:
            self._flush_recipes(buffer)

    def _flush_recipes(self, recipes: list[Recipe]) -> None:
        # Group consecutive same-region runs so add_chunk's single-region
        # contract holds while arbitrary interleavings round-trip.
        start = 0
        for stop in range(1, len(recipes) + 1):
            if (
                stop == len(recipes)
                or recipes[stop].region_code != recipes[start].region_code
            ):
                run = recipes[start:stop]
                lengths = np.fromiter(
                    (r.size for r in run), dtype=np.int64, count=len(run)
                )
                flat = np.fromiter(
                    (i for r in run for i in r.ingredient_ids),
                    dtype=np.int64,
                    count=int(lengths.sum()),
                )
                self.add_chunk(
                    run[0].region_code,
                    lengths,
                    flat,
                    np.fromiter(
                        (r.recipe_id for r in run),
                        dtype=np.int64,
                        count=len(run),
                    ),
                    titles=[r.title for r in run] if self.store_text else None,
                    sources=(
                        [r.source for r in run] if self.store_text else None
                    ),
                )
                start = stop

    # -- assembly -------------------------------------------------------

    def abort(self) -> None:
        """Discard all staged state without writing the target."""
        if self._closed:
            return
        self._closed = True
        for stage in self._stages.values():
            stage.discard()
        self._tmp_container.unlink(missing_ok=True)

    def __enter__(self) -> "ColumnarWriter":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if exc_type is not None:
            self.abort()
        elif not self._closed:
            self.close()

    def close(self) -> Path:
        """Assemble and atomically publish the container; returns the path."""
        if self._closed:
            raise StorageError("writer is closed")
        self._closed = True
        bit_stages: list[Path] = []
        try:
            planes = self._assemble_planes()
            bit_stages = [
                Path(p) for _n, p, _d, _s in planes if isinstance(p, Path)
            ]
            self._write_container(planes)
        finally:
            for stage in self._stages.values():
                stage.discard()
            for path in bit_stages:
                path.unlink(missing_ok=True)
            self._tmp_container.unlink(missing_ok=True)
        return self.path

    def _assemble_planes(
        self,
    ) -> list[tuple[str, np.ndarray | Path, np.dtype, tuple[int, ...]]]:
        """Order every plane as (name, data-or-staged-path, dtype, shape)."""
        lengths = (
            np.concatenate(self._lengths)
            if self._lengths
            else np.empty(0, dtype=np.int64)
        )
        n = lengths.size
        total = int(lengths.sum())
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        if total <= np.iinfo(np.int32).max:
            indptr = indptr.astype(np.int32)
        indices = self._stages["indices"].finish()
        recipe_ids = np.asarray(self._stages["recipe_ids"].finish())
        region_index = self._stages["region_index"].finish()
        unique_ids = np.unique(recipe_ids)
        if unique_ids.size != recipe_ids.size:
            raise StorageError("duplicate recipe ids in columnar corpus")

        planes: list[
            tuple[str, np.ndarray | Path, np.dtype, tuple[int, ...]]
        ] = [
            ("indptr", indptr, indptr.dtype, indptr.shape),
            ("indices", np.asarray(indices), np.dtype(np.int32), (total,)),
            ("recipe_ids", recipe_ids, np.dtype(np.int64), (n,)),
            (
                "region_index",
                np.asarray(region_index),
                np.dtype(np.uint16),
                (n,),
            ),
        ]
        if self.store_text:
            for field in ("title", "source"):
                lens = np.asarray(self._stages[f"{field}_lens"].finish())
                offsets = np.zeros(n + 1, dtype=np.int64)
                np.cumsum(lens, out=offsets[1:])
                blob = self._stages[f"{field}_bytes"].finish()
                planes.append(
                    (
                        f"{field}_offsets",
                        offsets,
                        np.dtype(np.int64),
                        offsets.shape,
                    )
                )
                planes.append(
                    (
                        f"{field}_bytes",
                        np.asarray(blob),
                        np.dtype(np.uint8),
                        (int(offsets[-1]),),
                    )
                )
        self._regions = self._region_table(region_index, n)
        if self.bitplanes:
            planes.extend(self._build_bitplanes(indptr, indices))
        return planes

    def _region_table(self, region_index: np.ndarray, n: int) -> list[dict]:
        """Per-cuisine slice table (start/stop when rows are contiguous)."""
        table = []
        region_index = np.asarray(region_index)
        for row, code in enumerate(self._region_codes):
            rows = np.flatnonzero(region_index == row)
            entry: dict = {"code": code, "n_recipes": int(rows.size)}
            if rows.size and int(rows[-1] - rows[0]) + 1 == rows.size:
                entry["start"] = int(rows[0])
                entry["stop"] = int(rows[-1]) + 1
            else:
                entry["start"] = None
                entry["stop"] = None
            table.append(entry)
        return table

    def _cuisine_rows(self, entry: dict) -> np.ndarray:
        if entry["start"] is not None:
            return np.arange(entry["start"], entry["stop"], dtype=np.int64)
        region_index = np.asarray(self._stages["region_index"].finish())
        return np.flatnonzero(
            region_index == self._region_of[entry["code"]]
        ).astype(np.int64)

    def _build_bitplanes(
        self, indptr: np.ndarray, indices: np.ndarray
    ) -> list[tuple[str, np.ndarray | Path, np.dtype, tuple[int, ...]]]:
        """Packed-bit transaction planes, built block-wise from the CSR.

        Works over the staged (memmapped) CSR in column blocks of
        :data:`_COL_BLOCK` recipes, so peak memory is the block's boolean
        mask — never the full matrix.  The big planes land in their own
        temp files and are concatenated into the container afterwards.
        """
        planes: list[
            tuple[str, np.ndarray | Path, np.dtype, tuple[int, ...]]
        ] = []
        indptr = np.asarray(indptr)
        indices = np.asarray(indices)
        for entry in self._regions:
            code = entry["code"]
            rows = self._cuisine_rows(entry)
            n_c = rows.size
            if n_c == 0:
                continue
            universe: np.ndarray | None = None
            for start in range(0, n_c, _COL_BLOCK):
                _lens, flat = _gather_csr(
                    indptr, indices, rows[start:start + _COL_BLOCK]
                )
                block_unique = np.unique(flat)
                universe = (
                    block_unique
                    if universe is None
                    else np.union1d(universe, block_unique)
                )
            assert universe is not None
            n_bytes = (n_c + 7) // 8
            stage_path = self._tmp_container.with_name(
                self._tmp_container.name + f".bits.{len(planes)}"
            )
            matrix = np.memmap(
                stage_path,
                dtype=np.uint8,
                mode="w+",
                shape=(universe.size, n_bytes),
            )
            for start in range(0, n_c, _COL_BLOCK):
                block_rows = rows[start:start + _COL_BLOCK]
                lens, flat = _gather_csr(indptr, indices, block_rows)
                mask = np.zeros((universe.size, block_rows.size), dtype=bool)
                item_rows = np.searchsorted(universe, flat)
                cols = np.repeat(
                    np.arange(block_rows.size, dtype=np.int64), lens
                )
                mask[item_rows, cols] = True
                packed = np.packbits(mask, axis=1)
                byte0 = start // 8
                matrix[:, byte0:byte0 + packed.shape[1]] = packed
            matrix.flush()
            shape = (int(universe.size), int(n_bytes))
            del matrix
            planes.append(
                (
                    f"bititems:{code}",
                    universe.astype(np.int32),
                    np.dtype(np.int32),
                    (int(universe.size),),
                )
            )
            planes.append(
                (f"bits:{code}", stage_path, np.dtype(np.uint8), shape)
            )
        return planes

    def _write_container(
        self,
        planes: list[tuple[str, np.ndarray | Path, np.dtype, tuple[int, ...]]],
    ) -> None:
        descriptors: dict[str, dict] = {}
        with self._tmp_container.open("wb") as out:
            out.write(_MAGIC)
            offset = len(_MAGIC)
            for name, data, dtype, shape in planes:
                aligned = _align(offset)
                out.write(b"\x00" * (aligned - offset))
                offset = aligned
                hasher = hashlib.sha256()
                nbytes = 0
                if isinstance(data, Path):
                    with data.open("rb") as source:
                        while True:
                            chunk = source.read(_IO_CHUNK)
                            if not chunk:
                                break
                            hasher.update(chunk)
                            out.write(chunk)
                            nbytes += len(chunk)
                else:
                    raw = np.ascontiguousarray(data, dtype=dtype)
                    flat = raw.reshape(-1).view(np.uint8)
                    for start in range(0, flat.size, _IO_CHUNK):
                        chunk = flat[start:start + _IO_CHUNK].tobytes()
                        hasher.update(chunk)
                        out.write(chunk)
                        nbytes += len(chunk)
                expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
                if nbytes != expected:
                    raise StorageError(
                        f"plane {name!r}: wrote {nbytes} bytes, expected "
                        f"{expected}"
                    )
                descriptors[name] = {
                    "dtype": dtype.newbyteorder("<").str,
                    "shape": [int(s) for s in shape],
                    "offset": offset,
                    "nbytes": nbytes,
                    "sha256": hasher.hexdigest(),
                }
                offset += nbytes
            footer = {
                "format": "repro-columnar",
                "version": COLUMNAR_FORMAT_VERSION,
                "n_recipes": int(np.sum([len(c) for c in self._lengths])),
                "n_items": descriptors["indices"]["shape"][0],
                "store_text": self.store_text,
                "region_codes": list(self._region_codes),
                "regions": self._regions,
                "planes": descriptors,
            }
            footer_bytes = json.dumps(
                footer, sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
            footer_offset = offset
            out.write(footer_bytes)
            out.write(_TRAILER_MAGIC)
            out.write(
                footer_offset.to_bytes(8, "little")
                + len(footer_bytes).to_bytes(8, "little")
                + hashlib.sha256(footer_bytes).digest()
            )
            out.flush()
            os.fsync(out.fileno())
        os.replace(self._tmp_container, self.path)


def pack_dataset(
    dataset: RecipeDataset | Iterable[Recipe],
    path: str | Path,
    *,
    store_text: bool = True,
    bitplanes: bool = True,
) -> "ColumnarCorpus":
    """Pack a dataset into a columnar file and open the result."""
    recipes = (
        dataset.recipes if isinstance(dataset, RecipeDataset) else dataset
    )
    with ColumnarWriter(
        path, store_text=store_text, bitplanes=bitplanes
    ) as writer:
        writer.add_recipes(recipes)
    return ColumnarCorpus.open(path)


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PackedTransactions:
    """One cuisine's transactions in the PR-5 packed-bit layout.

    Attributes:
        item_ids: Ascending ingredient ids, one per matrix row.
        matrix: ``(len(item_ids), ceil(n_transactions / 8))`` uint8
            packed membership bits (bit = transaction, ``np.packbits``
            big-endian within each byte).
        n_transactions: Number of transactions (columns in use).
    """

    item_ids: np.ndarray
    matrix: np.ndarray
    n_transactions: int


@dataclass(frozen=True)
class PlaneStats:
    """On-disk footprint of one plane (the telemetry row shape)."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    nbytes: int


@dataclass(frozen=True)
class ColumnarDiskStats:
    """What one packed corpus costs on disk.

    Attributes:
        path: The container file.
        total_bytes: File size, including header/footer overhead.
        n_recipes: Recipes stored.
        n_planes: Plane count.
        planes: Per-plane footprints, file order.
    """

    path: str
    total_bytes: int
    n_recipes: int
    n_planes: int
    planes: tuple[PlaneStats, ...]


class _LazyRecipes(Sequence):
    """A read-only ``Sequence[Recipe]`` over columnar rows.

    Materializes one :class:`Recipe` per access, so an
    :class:`~repro.storage.inverted_index.InvertedIndex` built over a
    memory-mapped corpus never holds the whole collection.
    """

    def __init__(self, corpus: "ColumnarCorpus", rows: np.ndarray | None):
        self._corpus = corpus
        self._rows = rows  # None = all rows, identity mapping

    def __len__(self) -> int:
        if self._rows is None:
            return self._corpus.n_recipes
        return int(self._rows.size)

    def __getitem__(self, position):
        if isinstance(position, slice):
            return [self[i] for i in range(*position.indices(len(self)))]
        if position < 0:
            position += len(self)
        if not 0 <= position < len(self):
            raise IndexError(position)
        row = position if self._rows is None else int(self._rows[position])
        return self._corpus.recipe(row)

    def __iter__(self) -> Iterator[Recipe]:
        for position in range(len(self)):
            yield self[position]


class ColumnarCorpus:
    """A packed corpus opened read-only over one memory mapping.

    Obtain instances via :meth:`open` (existing files),
    :func:`pack_dataset` (from an in-memory dataset) or
    :meth:`~repro.synthesis.worldgen.WorldKitchen.generate_columnar`
    (streamed synthesis).  All plane accessors return views into the
    mapping — bounded memory, valid while the corpus is open.
    """

    def __init__(
        self, path: Path, mapping: np.memmap, footer: dict
    ):
        self._path = path
        self._mapping = mapping
        self._footer = footer
        self._planes = footer["planes"]
        self._regions = {
            entry["code"]: entry for entry in footer["regions"]
        }
        self._lexicon_dataset: RecipeDataset | None = None

    # -- opening --------------------------------------------------------

    @classmethod
    def open(cls, path: str | Path, *, verify: bool = False) -> "ColumnarCorpus":
        """Open a packed corpus.

        Args:
            path: The container file.
            verify: Recompute and check every plane's SHA-256 (one full
                sequential read).  The default trusts the structure
                checks — magic, trailer, footer digest, plane bounds —
                which catch torn writes and truncation without the scan.

        Raises:
            StorageError: If the file is missing, or fails validation —
                in which case it is quarantined to ``<path>.bad`` and
                recorded via the §9 corruption telemetry.
        """
        source = Path(path)
        if not source.exists():
            raise StorageError(f"no such columnar corpus: {source}")
        try:
            footer = cls._read_footer(source)
        except StorageError as exc:
            raise cls._quarantine(source, "corrupt-header", str(exc)) from exc
        mapping = np.memmap(source, dtype=np.uint8, mode="r")
        corpus = cls(source, mapping, footer)
        if verify:
            for name in footer["planes"]:
                descriptor = footer["planes"][name]
                digest = _sha256_array(corpus.plane(name))
                if digest != descriptor["sha256"]:
                    corpus.close()
                    raise cls._quarantine(
                        source,
                        "checksum-mismatch",
                        f"plane {name!r} digest {digest[:12]}... != "
                        f"recorded {descriptor['sha256'][:12]}...",
                    )
        return corpus

    @staticmethod
    def _quarantine(source: Path, kind: str, detail: str) -> StorageError:
        """Rename a failed file aside and return the error to raise."""
        quarantined = source.with_name(source.name + ".bad")
        action = "quarantined"
        try:
            os.replace(source, quarantined)
        except OSError:  # pragma: no cover - rename race/readonly dir
            action = "left in place"
        record_corruption(
            "ColumnarCorpus", source, kind, detail, action
        )
        return StorageError(
            f"columnar corpus {source} failed validation ({kind}: "
            f"{detail}); {action}"
        )

    @staticmethod
    def _read_footer(source: Path) -> dict:
        size = source.stat().st_size
        if size < len(_MAGIC) + _TRAILER_SIZE:
            raise StorageError(f"file too small ({size} bytes)")
        with source.open("rb") as handle:
            if handle.read(len(_MAGIC)) != _MAGIC:
                raise StorageError("bad magic")
            handle.seek(size - _TRAILER_SIZE)
            trailer = handle.read(_TRAILER_SIZE)
            if trailer[:8] != _TRAILER_MAGIC:
                raise StorageError("bad trailer magic (torn write?)")
            footer_offset = int.from_bytes(trailer[8:16], "little")
            footer_length = int.from_bytes(trailer[16:24], "little")
            recorded_digest = trailer[24:56]
            if (
                footer_offset < len(_MAGIC)
                or footer_offset + footer_length > size - _TRAILER_SIZE
            ):
                raise StorageError("footer bounds outside file")
            handle.seek(footer_offset)
            footer_bytes = handle.read(footer_length)
        if hashlib.sha256(footer_bytes).digest() != recorded_digest:
            raise StorageError("footer digest mismatch")
        try:
            footer = json.loads(footer_bytes)
        except json.JSONDecodeError as exc:
            raise StorageError(f"footer is not JSON: {exc}") from exc
        if footer.get("format") != "repro-columnar":
            raise StorageError("not a repro columnar file")
        if footer.get("version") != COLUMNAR_FORMAT_VERSION:
            raise StorageError(
                f"format version {footer.get('version')} != "
                f"{COLUMNAR_FORMAT_VERSION}"
            )
        for name, descriptor in footer["planes"].items():
            end = descriptor["offset"] + descriptor["nbytes"]
            if end > size - _TRAILER_SIZE:
                raise StorageError(f"plane {name!r} extends past the footer")
        return footer

    def close(self) -> None:
        """Release the mapping; plane views become invalid."""
        mapping = self._mapping
        self._mapping = None  # type: ignore[assignment]
        if mapping is not None and hasattr(mapping, "_mmap"):
            mapping._mmap.close()  # noqa: SLF001 - explicit unmap

    def __enter__(self) -> "ColumnarCorpus":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- planes ---------------------------------------------------------

    def plane(self, name: str) -> np.ndarray:
        """One plane as a read-only view into the mapping."""
        descriptor = self._planes.get(name)
        if descriptor is None:
            raise StorageError(f"no such plane {name!r} in {self._path}")
        if self._mapping is None:
            raise StorageError(f"columnar corpus {self._path} is closed")
        start = descriptor["offset"]
        raw = self._mapping[start:start + descriptor["nbytes"]]
        return raw.view(np.dtype(descriptor["dtype"])).reshape(
            descriptor["shape"]
        )

    def plane_names(self) -> tuple[str, ...]:
        return tuple(self._planes)

    @property
    def path(self) -> Path:
        return self._path

    @property
    def indptr(self) -> np.ndarray:
        return self.plane("indptr")

    @property
    def indices(self) -> np.ndarray:
        return self.plane("indices")

    @property
    def recipe_ids(self) -> np.ndarray:
        return self.plane("recipe_ids")

    @property
    def region_index(self) -> np.ndarray:
        return self.plane("region_index")

    @property
    def store_text(self) -> bool:
        return bool(self._footer["store_text"])

    @property
    def n_recipes(self) -> int:
        return int(self._footer["n_recipes"])

    @property
    def n_items(self) -> int:
        """Total ingredient occurrences across all recipes."""
        return int(self._footer["n_items"])

    def __len__(self) -> int:
        return self.n_recipes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ColumnarCorpus({self.n_recipes} recipes, "
            f"{len(self._regions)} cuisines, {self._path.name})"
        )

    # -- cuisines -------------------------------------------------------

    def region_codes(self) -> tuple[str, ...]:
        """Region codes present, sorted (the dataset convention)."""
        return tuple(sorted(self._regions))

    def stored_region_codes(self) -> tuple[str, ...]:
        """Region codes in first-encounter (storage) order."""
        return tuple(self._footer["region_codes"])

    def _region_entry(self, region_code: str) -> dict:
        entry = self._regions.get(region_code)
        if entry is None:
            raise StorageError(
                f"no recipes stored for cuisine {region_code!r}"
            )
        return entry

    def cuisine_size(self, region_code: str) -> int:
        return int(self._region_entry(region_code)["n_recipes"])

    def cuisine_slice(self, region_code: str) -> slice | None:
        """The cuisine's contiguous row slice, or ``None`` if interleaved."""
        entry = self._region_entry(region_code)
        if entry["start"] is None:
            return None
        return slice(entry["start"], entry["stop"])

    def cuisine_rows(self, region_code: str) -> np.ndarray:
        """Global row numbers of the cuisine's recipes, ascending."""
        entry = self._region_entry(region_code)
        if entry["start"] is not None:
            return np.arange(entry["start"], entry["stop"], dtype=np.int64)
        wanted = self._footer["region_codes"].index(region_code)
        return np.flatnonzero(
            np.asarray(self.region_index) == wanted
        ).astype(np.int64)

    def cuisine_csr(
        self, region_code: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(lengths, flat ids)`` for one cuisine, in recipe order.

        Contiguous cuisines return zero-copy views; interleaved ones a
        vectorized gather.
        """
        window = self.cuisine_slice(region_code)
        indptr = self.indptr
        if window is not None:
            lengths = (
                indptr[window.start + 1:window.stop + 1]
                - indptr[window.start:window.stop]
            ).astype(np.int64)
            flat = self.indices[
                int(indptr[window.start]):int(indptr[window.stop])
            ]
            return lengths, flat
        return _gather_csr(
            indptr, self.indices, self.cuisine_rows(region_code)
        )

    # -- per-recipe access ----------------------------------------------

    def sizes(self) -> np.ndarray:
        """All recipe sizes, in dataset order."""
        return np.diff(self.indptr).astype(np.int64)

    def cuisine_sizes(self, region_code: str) -> np.ndarray:
        lengths, _flat = self.cuisine_csr(region_code)
        return lengths

    def ingredient_universe(
        self, region_code: str | None = None
    ) -> np.ndarray:
        """Ascending unique ingredient ids (one cuisine or the corpus)."""
        if region_code is None:
            source = self.indices
        else:
            entry = self._region_entry(region_code)
            if f"bititems:{entry['code']}" in self._planes:
                return np.asarray(
                    self.plane(f"bititems:{entry['code']}"), dtype=np.int64
                )
            _lengths, source = self.cuisine_csr(region_code)
        universe: np.ndarray | None = None
        source = np.asarray(source)
        for start in range(0, source.size, _IO_CHUNK):
            block = np.unique(source[start:start + _IO_CHUNK])
            universe = (
                block if universe is None else np.union1d(universe, block)
            )
        if universe is None:
            return np.empty(0, dtype=np.int64)
        return universe.astype(np.int64)

    def _text(self, field: str, row: int) -> str:
        if not self.store_text:
            return ""
        offsets = self.plane(f"{field}_offsets")
        blob = self.plane(f"{field}_bytes")
        return bytes(
            blob[int(offsets[row]):int(offsets[row + 1])]
        ).decode("utf-8")

    def recipe(self, row: int) -> Recipe:
        """Materialize the recipe stored at global ``row``."""
        if not 0 <= row < self.n_recipes:
            raise StorageError(
                f"row {row} out of range for {self.n_recipes} recipes"
            )
        indptr = self.indptr
        ids = self.indices[int(indptr[row]):int(indptr[row + 1])]
        code = self._footer["region_codes"][int(self.region_index[row])]
        return Recipe(
            recipe_id=int(self.recipe_ids[row]),
            region_code=code,
            ingredient_ids=tuple(int(i) for i in ids),
            title=self._text("title", row),
            source=self._text("source", row),
        )

    def iter_recipes(self) -> Iterator[Recipe]:
        """All recipes in dataset order, materialized one at a time."""
        for row in range(self.n_recipes):
            yield self.recipe(row)

    def to_dataset(self) -> RecipeDataset:
        """Materialize the full :class:`RecipeDataset` (object path).

        This is the eager escape hatch — it holds every recipe in
        memory, so reserve it for reproduction-scale corpora; large
        worlds should stay on the plane accessors.
        """
        return RecipeDataset(self.iter_recipes())

    def transactions(self, region_code: str) -> list[frozenset[int]]:
        """One cuisine's recipes as materialized id sets (mining input).

        Order and content match
        ``dataset.cuisine(code).as_id_sets()`` exactly; prefer
        :meth:`packed` + the bitset miner's packed entry point for the
        zero-object path.
        """
        lengths, flat = self.cuisine_csr(region_code)
        bounds = np.cumsum(lengths)[:-1]
        return [
            frozenset(int(i) for i in run)
            for run in np.split(np.asarray(flat), bounds)
        ]

    # -- mining-facing views --------------------------------------------

    def packed(self, region_code: str) -> PackedTransactions:
        """The cuisine's packed-bit transaction matrix.

        Stored ``bits:<code>`` planes are returned zero-copy from the
        mapping; corpora packed without bitplanes fall back to a
        block-wise build from the CSR (bounded by the matrix itself).
        """
        entry = self._region_entry(region_code)
        code = entry["code"]
        if f"bits:{code}" in self._planes:
            return PackedTransactions(
                item_ids=np.asarray(
                    self.plane(f"bititems:{code}"), dtype=np.int64
                ),
                matrix=self.plane(f"bits:{code}"),
                n_transactions=int(entry["n_recipes"]),
            )
        rows = self.cuisine_rows(region_code)
        universe = self.ingredient_universe(region_code)
        n_c = rows.size
        matrix = np.zeros((universe.size, (n_c + 7) // 8), dtype=np.uint8)
        for start in range(0, n_c, _COL_BLOCK):
            block_rows = rows[start:start + _COL_BLOCK]
            lens, flat = _gather_csr(self.indptr, self.indices, block_rows)
            mask = np.zeros((universe.size, block_rows.size), dtype=bool)
            mask[
                np.searchsorted(universe, flat),
                np.repeat(np.arange(block_rows.size, dtype=np.int64), lens),
            ] = True
            packed = np.packbits(mask, axis=1)
            byte0 = start // 8
            matrix[:, byte0:byte0 + packed.shape[1]] = packed
        return PackedTransactions(
            item_ids=universe, matrix=matrix, n_transactions=n_c
        )

    def transactions_fingerprint_for(self, region_code: str) -> str:
        """The cuisine's mined-curve cache fingerprint, from the planes.

        Bit-identical to
        ``transactions_fingerprint(dataset.cuisine(code).as_id_sets())``
        — the digest is computed over the same (lengths, flat ids)
        content directly from the CSR planes, so a
        :class:`~repro.runtime.curve_cache.CurveCache` warmed through
        the object path serves the columnar path and vice versa, with
        no transaction rebuild.
        """
        from repro.runtime.curve_cache import fingerprint_planes

        lengths, flat = self.cuisine_csr(region_code)
        return fingerprint_planes(
            lengths, np.asarray(flat, dtype=np.int64)
        )

    def mine(self, region_code: str, min_support: float, max_size=None):
        """Mine one cuisine over its packed planes (zero object path).

        Returns a :class:`~repro.analysis.itemsets.MiningResult`
        bit-identical to running any registered miner over
        ``dataset.cuisine(code).as_id_sets()``.
        """
        from repro.analysis.itemsets_bitset import mine_packed

        packed = self.packed(region_code)
        return mine_packed(
            packed.matrix,
            packed.item_ids,
            packed.n_transactions,
            min_support,
            max_size=max_size,
        )

    # -- stats ----------------------------------------------------------

    def stats(self) -> CorpusStats:
        """Sec. II corpus statistics, computed from the planes.

        Matches :func:`repro.corpus.stats.corpus_stats` over the
        materialized dataset exactly, without building any recipe
        objects.
        """
        if self.n_recipes == 0:
            raise EmptyCorpusError("dataset has no recipes")
        per_cuisine = []
        for code in self.region_codes():
            lengths = self.cuisine_sizes(code)
            if lengths.size == 0:
                raise EmptyCorpusError(f"cuisine {code!r} has no recipes")
            n_ingredients = int(self.ingredient_universe(code).size)
            per_cuisine.append(
                CuisineStats(
                    region_code=code,
                    n_recipes=int(lengths.size),
                    n_ingredients=n_ingredients,
                    avg_recipe_size=float(lengths.mean()),
                    min_recipe_size=int(lengths.min()),
                    max_recipe_size=int(lengths.max()),
                    phi=n_ingredients / int(lengths.size),
                )
            )
        counts = [(s.region_code, s.n_recipes) for s in per_cuisine]
        return CorpusStats(
            n_recipes=self.n_recipes,
            n_cuisines=len(per_cuisine),
            avg_recipes_per_cuisine=float(
                np.mean([s.n_recipes for s in per_cuisine])
            ),
            avg_ingredients_per_cuisine=float(
                np.mean([s.n_ingredients for s in per_cuisine])
            ),
            largest_cuisine=max(counts, key=lambda item: item[1]),
            smallest_cuisine=min(counts, key=lambda item: item[1]),
            mean_recipe_size=float(self.sizes().mean()),
            per_cuisine=tuple(per_cuisine),
        )

    def disk_stats(self) -> ColumnarDiskStats:
        """Per-plane disk footprint (the `repro corpus stats` table)."""
        planes = tuple(
            PlaneStats(
                name=name,
                dtype=descriptor["dtype"],
                shape=tuple(descriptor["shape"]),
                nbytes=int(descriptor["nbytes"]),
            )
            for name, descriptor in self._planes.items()
        )
        return ColumnarDiskStats(
            path=str(self._path),
            total_bytes=int(self._path.stat().st_size),
            n_recipes=self.n_recipes,
            n_planes=len(planes),
            planes=planes,
        )

    # -- facade ---------------------------------------------------------

    def as_store(self, lexicon: Lexicon) -> "ColumnarRecipeStore":
        """A :class:`RecipeStore`-compatible view over this corpus."""
        return ColumnarRecipeStore(self, lexicon)


class ColumnarRecipeStore(RecipeStore):
    """The :class:`~repro.storage.store.RecipeStore` facade over a
    packed corpus.

    Presents the exact store API — support queries, category
    projections, co-occurrence, per-cuisine inverted indexes — so the
    analysis and generation layers run unchanged, but builds every
    index lazily and vectorized from the CSR planes: nothing is
    materialized until a query needs it, and recipes come back through
    a lazy sequence that constructs one object per access.

    Args:
        corpus: The open packed corpus (must stay open while the store
            is used — the memmap lifetime rule).
        lexicon: Lexicon providing the category map; the corpus may
            only reference ids present in it (validated vectorized).
    """

    def __init__(self, corpus: ColumnarCorpus, lexicon: Lexicon):
        self._corpus = corpus
        self._lexicon = lexicon
        self._materialized: RecipeDataset | None = None
        self._lazy_global: InvertedIndex | None = None
        self._lazy_cuisine: dict[str, InvertedIndex] = {}
        known = np.fromiter(
            lexicon.ids, dtype=np.int64, count=len(lexicon.ids)
        )
        universe = corpus.ingredient_universe()
        unknown = universe[~np.isin(universe, known, assume_unique=True)]
        if unknown.size:
            # Report the first offending recipe, in the same message
            # shape the eager store raises.
            bad = np.flatnonzero(
                np.isin(np.asarray(corpus.indices), unknown)
            )[0]
            row = int(
                np.searchsorted(corpus.indptr, bad, side="right") - 1
            )
            recipe = corpus.recipe(row)
            unknown_ids = [
                int(i) for i in recipe.ingredient_ids if int(i) in set(
                    int(u) for u in unknown
                )
            ]
            raise StorageError(
                f"recipe {recipe.recipe_id} references ids not in the "
                f"lexicon: {unknown_ids[:5]}"
            )

    @property
    def dataset(self) -> RecipeDataset:
        """The materialized dataset (built on first access, cached)."""
        if self._materialized is None:
            self._materialized = self._corpus.to_dataset()
        return self._materialized

    @property
    def corpus(self) -> ColumnarCorpus:
        return self._corpus

    @property
    def global_index(self) -> InvertedIndex:
        if self._lazy_global is None:
            self._lazy_global = InvertedIndex.from_csr(
                np.asarray(self._corpus.indptr, dtype=np.int64),
                self._corpus.indices,
                _LazyRecipes(self._corpus, None),
            )
        return self._lazy_global

    def region_codes(self) -> tuple[str, ...]:
        return self._corpus.region_codes()

    def cuisine_index(self, region_code: str) -> InvertedIndex:
        index = self._lazy_cuisine.get(region_code)
        if index is None:
            lengths, flat = self._corpus.cuisine_csr(region_code)
            indptr = np.zeros(lengths.size + 1, dtype=np.int64)
            np.cumsum(lengths, out=indptr[1:])
            index = InvertedIndex.from_csr(
                indptr,
                flat,
                _LazyRecipes(
                    self._corpus, self._corpus.cuisine_rows(region_code)
                ),
            )
            self._lazy_cuisine[region_code] = index
        return index

    def cuisine_view(self, region_code: str) -> CuisineView:
        rows = self._corpus.cuisine_rows(region_code)
        return CuisineView(
            region_code,
            [self._corpus.recipe(int(row)) for row in rows],
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ColumnarRecipeStore({self._corpus.n_recipes} recipes, "
            f"{len(self._corpus.region_codes())} cuisines, memmapped)"
        )
