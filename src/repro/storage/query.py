"""A small conjunctive query layer over :class:`RecipeStore`.

Queries are conjunctions of clauses over a cuisine (or the whole corpus):

* ``HasIngredient(name_or_id)`` — recipe contains the ingredient;
* ``HasCategory(category)`` — recipe contains any ingredient of the
  category;
* ``SizeBetween(lo, hi)`` — recipe size within bounds (inclusive).

Name resolution goes through the lexicon's aliasing protocol, so
``HasIngredient("soy sauce")`` finds "soybean sauce" recipes.  This layer
powers the CLI's ad-hoc inspection commands and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.corpus.recipe import Recipe
from repro.errors import QueryError
from repro.lexicon.categories import Category, parse_category
from repro.storage.inverted_index import InvertedIndex, intersect_postings
from repro.storage.store import RecipeStore

__all__ = ["HasIngredient", "HasCategory", "SizeBetween", "Query", "Clause"]


@dataclass(frozen=True)
class HasIngredient:
    """Clause: the recipe contains this ingredient (name or id)."""

    ingredient: Union[str, int]


@dataclass(frozen=True)
class HasCategory:
    """Clause: the recipe contains >= 1 ingredient of this category."""

    category: Union[str, Category]


@dataclass(frozen=True)
class SizeBetween:
    """Clause: ``lo <= recipe.size <= hi``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo < 1 or self.hi < self.lo:
            raise QueryError(f"invalid size bounds [{self.lo}, {self.hi}]")


Clause = Union[HasIngredient, HasCategory, SizeBetween]


class Query:
    """A conjunctive query executable against a :class:`RecipeStore`."""

    def __init__(self, clauses: Sequence[Clause]):
        if not clauses:
            raise QueryError("query must have at least one clause")
        self._clauses = tuple(clauses)

    @property
    def clauses(self) -> tuple[Clause, ...]:
        return self._clauses

    def _resolve_ingredient_id(self, store: RecipeStore, clause: HasIngredient) -> int:
        if isinstance(clause.ingredient, int):
            return clause.ingredient
        resolution = store.lexicon.resolve(clause.ingredient)
        if resolution.ingredient is None:
            raise QueryError(
                f"cannot resolve ingredient {clause.ingredient!r} against "
                "the lexicon"
            )
        return resolution.ingredient.ingredient_id

    def _rows(self, store: RecipeStore, index: InvertedIndex) -> np.ndarray:
        postings: list[np.ndarray] = []
        row_filters: list[np.ndarray] = []

        for clause in self._clauses:
            if isinstance(clause, HasIngredient):
                ingredient_id = self._resolve_ingredient_id(store, clause)
                postings.append(index.postings(ingredient_id))
            elif isinstance(clause, HasCategory):
                category = parse_category(clause.category)
                members = [
                    i.ingredient_id
                    for i in store.lexicon.by_category(category)
                ]
                union: np.ndarray = np.unique(
                    np.concatenate(
                        [index.postings(m) for m in members]
                        or [np.empty(0, dtype=np.int64)]
                    )
                )
                postings.append(union)
            elif isinstance(clause, SizeBetween):
                mask_rows = np.array(
                    [
                        row
                        for row in range(index.n_recipes)
                        if clause.lo <= index.recipe_at(row).size <= clause.hi
                    ],
                    dtype=np.int64,
                )
                row_filters.append(mask_rows)
            else:  # pragma: no cover - defensive
                raise QueryError(f"unknown clause type {type(clause).__name__}")

        all_postings = postings + row_filters
        if not all_postings:
            return np.arange(index.n_recipes, dtype=np.int64)
        return intersect_postings(all_postings)

    def execute(
        self, store: RecipeStore, region_code: str | None = None
    ) -> list[Recipe]:
        """Run the query; returns matching recipes in stored order."""
        index = (
            store.global_index
            if region_code is None
            else store.cuisine_index(region_code)
        )
        return [index.recipe_at(int(row)) for row in self._rows(store, index)]

    def count(self, store: RecipeStore, region_code: str | None = None) -> int:
        """Number of matching recipes (no materialization)."""
        index = (
            store.global_index
            if region_code is None
            else store.cuisine_index(region_code)
        )
        return int(self._rows(store, index).size)
