"""Inverted index over recipes: ingredient id -> posting list of recipes.

The analytics in Secs. III-IV are support-counting problems ("how many
recipes of cuisine X contain ingredient set S?").  An inverted index with
sorted integer posting lists answers these with k-way intersections — the
same structure a search engine or an Eclat miner uses — and is the
workhorse beneath :mod:`repro.storage.store` and
:mod:`repro.analysis.itemsets`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.corpus.recipe import Recipe

__all__ = ["InvertedIndex", "intersect_postings"]


def intersect_postings(postings: Sequence[np.ndarray]) -> np.ndarray:
    """Intersect sorted integer posting arrays, smallest-first.

    Args:
        postings: Sorted, duplicate-free ``int64`` arrays.

    Returns:
        The sorted intersection; empty array when ``postings`` is empty.
    """
    if not postings:
        return np.empty(0, dtype=np.int64)
    ordered = sorted(postings, key=len)
    result = ordered[0]
    for other in ordered[1:]:
        if result.size == 0:
            break
        # np.isin on sorted unique inputs is the fastest pure-numpy path.
        result = result[np.isin(result, other, assume_unique=True)]
    return result


class InvertedIndex:
    """Immutable ingredient -> recipe-row index for one recipe collection.

    Rows are positions in the build-time recipe sequence, not recipe ids;
    this keeps posting lists dense and intersection-friendly.  Use
    :meth:`recipe_at` to map a row back to its :class:`Recipe`.
    """

    def __init__(self, recipes: Sequence[Recipe]):
        self._recipes = tuple(recipes)
        buckets: dict[int, list[int]] = {}
        for row, recipe in enumerate(self._recipes):
            for ingredient_id in recipe.ingredient_ids:
                buckets.setdefault(ingredient_id, []).append(row)
        self._postings: dict[int, np.ndarray] = {
            ingredient_id: np.asarray(rows, dtype=np.int64)
            for ingredient_id, rows in buckets.items()
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._recipes)

    @property
    def n_recipes(self) -> int:
        return len(self._recipes)

    @property
    def vocabulary(self) -> tuple[int, ...]:
        """Sorted ingredient ids present in the collection."""
        return tuple(sorted(self._postings))

    def recipe_at(self, row: int) -> Recipe:
        """The recipe stored at ``row``."""
        return self._recipes[row]

    def __iter__(self) -> Iterator[Recipe]:
        return iter(self._recipes)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def postings(self, ingredient_id: int) -> np.ndarray:
        """Sorted rows of recipes containing ``ingredient_id``.

        Returns an empty array for unseen ingredients.  The returned
        array is shared — treat it as read-only.
        """
        return self._postings.get(ingredient_id, np.empty(0, dtype=np.int64))

    def document_frequency(self, ingredient_id: int) -> int:
        """Number of recipes containing the ingredient."""
        return int(self.postings(ingredient_id).size)

    def support(self, ingredient_ids: Iterable[int]) -> int:
        """Number of recipes containing *all* of ``ingredient_ids``.

        An empty itemset is contained in every recipe.
        """
        ids = list(ingredient_ids)
        if not ids:
            return self.n_recipes
        return int(self.rows_containing(ids).size)

    def rows_containing(self, ingredient_ids: Iterable[int]) -> np.ndarray:
        """Rows of recipes containing all given ingredients."""
        ids = list(ingredient_ids)
        if not ids:
            return np.arange(self.n_recipes, dtype=np.int64)
        return intersect_postings([self.postings(i) for i in ids])

    def document_frequencies(self) -> dict[int, int]:
        """ingredient id -> recipe count, for all ingredients."""
        return {
            ingredient_id: int(rows.size)
            for ingredient_id, rows in self._postings.items()
        }
