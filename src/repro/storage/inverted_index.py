"""Inverted index over recipes: ingredient id -> posting list of recipes.

The analytics in Secs. III-IV are support-counting problems ("how many
recipes of cuisine X contain ingredient set S?").  An inverted index with
sorted integer posting lists answers these with k-way intersections — the
same structure a search engine or an Eclat miner uses — and is the
workhorse beneath :mod:`repro.storage.store` and
:mod:`repro.analysis.itemsets`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.corpus.recipe import Recipe

__all__ = ["InvertedIndex", "intersect_pair", "intersect_postings"]

#: Galloping beats the sort-based path when the small side's
#: ``k·log2(n)`` binary-search work is this many times cheaper than the
#: large side's length.  Micro-bench (this container, numpy 2.4, 1 CPU):
#: intersecting |small|=32 against |large|=1e6 runs ~40× faster via
#: searchsorted (9 µs vs 380 µs for np.isin, which sorts/scans the large
#: side); at |small| ≈ |large| the sort-based path wins by ~1.6×.  The
#: crossover sits near k·log2(n) ≈ n/8; 4 adds safety margin for cache
#: effects on mid-sized inputs.
_GALLOP_RATIO = 4.0


def intersect_pair(small: np.ndarray, other: np.ndarray) -> np.ndarray:
    """Intersect two sorted duplicate-free arrays, keeping ``small``'s dtype.

    Picks between two strategies:

    * **Galloping** (``np.searchsorted``): binary-search each element of
      the small side into the large side — O(k·log n).  Wins when one
      side is much smaller (the degenerate case a rare ingredient
      intersected against a staple's posting list).
    * **Sort-based** (``np.isin(assume_unique=True)``): O(n + m) after
      an internal sort — wins when the sides are comparable.
    """
    if small.size == 0 or other.size == 0:
        return small[:0]
    if small.size * (np.log2(other.size) + 1.0) * _GALLOP_RATIO < other.size:
        positions = np.searchsorted(other, small)
        positions[positions == other.size] = 0  # safe probe; can't match
        return small[other[positions] == small]
    return small[np.isin(small, other, assume_unique=True)]


def intersect_postings(postings: Sequence[np.ndarray]) -> np.ndarray:
    """Intersect sorted integer posting arrays, smallest-first.

    Args:
        postings: Sorted, duplicate-free ``int64`` arrays.

    Returns:
        The sorted intersection; empty array when ``postings`` is empty.
    """
    if not postings:
        return np.empty(0, dtype=np.int64)
    ordered = sorted(postings, key=len)
    result = ordered[0]
    for other in ordered[1:]:
        if result.size == 0:
            break
        result = intersect_pair(result, other)
    return result


class InvertedIndex:
    """Immutable ingredient -> recipe-row index for one recipe collection.

    Rows are positions in the build-time recipe sequence, not recipe ids;
    this keeps posting lists dense and intersection-friendly.  Use
    :meth:`recipe_at` to map a row back to its :class:`Recipe`.
    """

    def __init__(self, recipes: Sequence[Recipe]):
        self._recipes = tuple(recipes)
        buckets: dict[int, list[int]] = {}
        for row, recipe in enumerate(self._recipes):
            for ingredient_id in recipe.ingredient_ids:
                buckets.setdefault(ingredient_id, []).append(row)
        self._postings: dict[int, np.ndarray] = {
            ingredient_id: np.asarray(rows, dtype=np.int64)
            for ingredient_id, rows in buckets.items()
        }

    @classmethod
    def from_csr(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        recipes: Sequence[Recipe],
    ) -> "InvertedIndex":
        """Build the index from CSR planes without touching ``recipes``.

        The posting lists come from one vectorized pass over the planes
        (a stable argsort of the id column), so a columnar corpus can be
        indexed without materializing its recipes; ``recipes`` may be a
        lazy sequence (e.g. over a memory-mapped corpus) consulted only
        by :meth:`recipe_at`.

        Args:
            indptr: ``(n + 1,)`` CSR row pointers.
            indices: Concatenated per-recipe ingredient ids; each row's
                run sorted and duplicate-free (the ``Recipe`` invariant).
            recipes: Row -> recipe mapping, same order as the CSR rows.
        """
        index = cls.__new__(cls)
        index._recipes = recipes  # type: ignore[assignment]
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices)
        rows = np.repeat(
            np.arange(indptr.size - 1, dtype=np.int64), np.diff(indptr)
        )
        order = np.argsort(indices, kind="stable")  # rows stay ascending
        sorted_ids = indices[order].astype(np.int64, copy=False)
        sorted_rows = rows[order]
        unique_ids, starts = np.unique(sorted_ids, return_index=True)
        bounds = np.append(starts[1:], sorted_ids.size)
        index._postings = {
            int(ingredient_id): sorted_rows[start:stop]
            for ingredient_id, start, stop in zip(unique_ids, starts, bounds)
        }
        return index

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._recipes)

    @property
    def n_recipes(self) -> int:
        return len(self._recipes)

    @property
    def vocabulary(self) -> tuple[int, ...]:
        """Sorted ingredient ids present in the collection."""
        return tuple(sorted(self._postings))

    def recipe_at(self, row: int) -> Recipe:
        """The recipe stored at ``row``."""
        return self._recipes[row]

    def __iter__(self) -> Iterator[Recipe]:
        return iter(self._recipes)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def postings(self, ingredient_id: int) -> np.ndarray:
        """Sorted rows of recipes containing ``ingredient_id``.

        Returns an empty array for unseen ingredients.  The returned
        array is shared — treat it as read-only.
        """
        return self._postings.get(ingredient_id, np.empty(0, dtype=np.int64))

    def document_frequency(self, ingredient_id: int) -> int:
        """Number of recipes containing the ingredient."""
        return int(self.postings(ingredient_id).size)

    def support(self, ingredient_ids: Iterable[int]) -> int:
        """Number of recipes containing *all* of ``ingredient_ids``.

        An empty itemset is contained in every recipe.
        """
        ids = list(ingredient_ids)
        if not ids:
            return self.n_recipes
        return int(self.rows_containing(ids).size)

    def rows_containing(self, ingredient_ids: Iterable[int]) -> np.ndarray:
        """Rows of recipes containing all given ingredients."""
        ids = list(ingredient_ids)
        if not ids:
            return np.arange(self.n_recipes, dtype=np.int64)
        return intersect_postings([self.postings(i) for i in ids])

    def document_frequencies(self) -> dict[int, int]:
        """ingredient id -> recipe count, for all ingredients."""
        return {
            ingredient_id: int(rows.size)
            for ingredient_id, rows in self._postings.items()
        }
