"""Random-number discipline for the library.

Every stochastic component in :mod:`repro` takes either an integer seed or
a :class:`numpy.random.Generator`.  This module centralizes the coercion
rules so that results are reproducible bit-for-bit for a fixed seed and so
that independent subsystems can derive *independent* child streams from a
single root seed (via :func:`spawn`).
"""

from __future__ import annotations

from typing import Iterator, Sequence, TypeVar, Union

import numpy as np

__all__ = [
    "SeedLike",
    "ensure_rng",
    "spawn",
    "spawn_seeds",
    "rng_from_seed",
    "derive_seed",
    "choice_index",
    "shuffled",
]

SeedLike = Union[int, np.random.Generator, None]

T = TypeVar("T")

#: Default root seed used across examples and experiments when the caller
#: does not provide one.  Chosen arbitrarily; fixed for reproducibility.
DEFAULT_SEED = 20190408  # ICDE 2019 week.


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Args:
        seed: ``None`` (fresh nondeterministic generator), an ``int`` seed,
            or an existing ``Generator`` (returned unchanged).

    Returns:
        A numpy random generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, int, or numpy Generator, got {type(seed).__name__}"
    )


def spawn_seeds(rng: np.random.Generator, n: int) -> list[int]:
    """Draw ``n`` independent 63-bit child seeds from ``rng``.

    This is the transportable half of :func:`spawn`: integer seeds can
    cross process boundaries and key on-disk caches, and
    :func:`rng_from_seed` reconstructs the exact child generator
    :func:`spawn` would have produced.  The draw consumes ``rng`` state
    exactly like :func:`spawn` does, so the two are interchangeable
    without disturbing downstream streams.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of seeds: {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [int(s) for s in seeds]


def rng_from_seed(seed: int) -> np.random.Generator:
    """Reconstruct the child generator for one :func:`spawn_seeds` seed.

    Every backend of :mod:`repro.runtime` builds its per-run generators
    through this single function, which is what makes serial, thread and
    process execution bit-identical for a fixed master seed.
    """
    return np.random.default_rng(np.random.SeedSequence(int(seed)))


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``.

    Children are derived through :class:`numpy.random.SeedSequence`
    spawning, so different children never share a stream even when used
    concurrently.
    """
    return [rng_from_seed(seed) for seed in spawn_seeds(rng, n)]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh 63-bit integer seed from ``rng``.

    Useful when a child component accepts only integer seeds.
    """
    return int(rng.integers(0, 2**63 - 1, dtype=np.int64))


def choice_index(rng: np.random.Generator, n: int) -> int:
    """Return a uniform index in ``[0, n)``.

    Thin wrapper that raises a clear error for empty ranges instead of the
    opaque numpy message.
    """
    if n <= 0:
        raise ValueError("cannot choose from an empty range")
    return int(rng.integers(0, n))


def shuffled(rng: np.random.Generator, items: Sequence[T]) -> list[T]:
    """Return a new list with the elements of ``items`` in random order."""
    order = rng.permutation(len(items))
    return [items[i] for i in order]


def iter_child_rngs(seed: SeedLike, n: int) -> Iterator[np.random.Generator]:
    """Yield ``n`` independent generators derived from ``seed``."""
    root = ensure_rng(seed)
    yield from spawn(root, n)
