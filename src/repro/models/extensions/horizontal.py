"""Horizontal (cross-cuisine) transmission — legacy compat wrapper.

Sec. VII: "it is highly unlikely that cuisines evolved in isolation.
Analogous to languages, the propagation of culinary habits would have
been both vertical (time) as well as horizontal (regions)."

.. deprecated::
    :class:`HorizontalExchangeSimulation` predates the first-class
    island engine and is kept as a thin wrapper over
    :class:`repro.models.islands.IslandSimulation` on a full-mesh
    topology: a global ``exchange_rate`` is split evenly across each
    island's ``n - 1`` inbound edges, so the per-step borrow
    probability matches the old single-coin semantics.  New code should
    construct an :class:`~repro.models.islands.IslandSimulation`
    directly — it adds ring/star/custom topologies, per-edge rates,
    per-island seed streams (DESIGN.md §10) and runtime dispatch.

The wrapper also carries the two fixes for the bugs the old inline loop
shipped with: the borrow-refill loop no longer hangs when the
borrower's pool holds fewer distinct ingredients than the donor recipe
is long (refills cap at the pool size and the mother truncates), and
borrowed mothers are filtered against the borrower's *pool* accounting
rather than its raw universe — foreign-but-known ingredients enter
through :meth:`~repro.models.state.EvolutionState.adopt_ingredient`
(counted in ``trace.ingredients_added``), so migration preserves the
m/n invariant Algorithm 1 enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ModelError, ParameterError
from repro.models.base import CopyMutateBase, EvolutionRun
from repro.models.islands import IslandSimulation, MigrationTopology
from repro.models.params import CuisineSpec
from repro.rng import SeedLike

__all__ = ["HorizontalExchangeSimulation", "ExchangeOutcome"]


@dataclass(frozen=True)
class ExchangeOutcome:
    """Result of a co-evolution simulation.

    Attributes:
        runs: Per-cuisine evolution runs, keyed by region code.
        borrow_events: Count of cross-cuisine borrowings per borrower.
        pools: Final ingredient pool per cuisine — every transaction is
            a subset of its cuisine's pool.
    """

    runs: dict[str, EvolutionRun]
    borrow_events: dict[str, int]
    pools: dict[str, tuple[int, ...]] = field(default_factory=dict)


class HorizontalExchangeSimulation:
    """Co-evolves several cuisines with cross-cuisine recipe borrowing.

    Compat facade over the island engine (see module docstring).

    Args:
        inner_model: A :class:`CopyMutateBase` subclass *instance* whose
            mutation machinery is reused for every cuisine.
        exchange_rate: Probability that a recipe step borrows its mother
            recipe from a random other cuisine (split evenly across the
            full-mesh inbound edges).
    """

    def __init__(
        self,
        inner_model: CopyMutateBase,
        exchange_rate: float = 0.05,
    ):
        if not isinstance(inner_model, CopyMutateBase):
            raise ModelError(
                "horizontal exchange requires a copy-mutate inner model"
            )
        if not 0.0 <= exchange_rate <= 1.0:
            raise ParameterError(
                f"exchange_rate must be in [0, 1], got {exchange_rate}"
            )
        self.inner_model = inner_model
        self.exchange_rate = exchange_rate

    def run(
        self, specs: list[CuisineSpec], seed: SeedLike = None
    ) -> ExchangeOutcome:
        """Co-evolve all cuisines to their target sizes.

        Delegates to :class:`~repro.models.islands.IslandSimulation`
        under a full mesh at per-edge rate
        ``exchange_rate / (len(specs) - 1)``; only the run labels keep
        the legacy ``HX(...)`` name.
        """
        if len(specs) < 2:
            raise ModelError("horizontal exchange needs at least two cuisines")
        codes = [spec.region_code for spec in specs]
        topology = MigrationTopology.full_mesh(
            codes, self.exchange_rate / (len(specs) - 1)
        )
        simulation = IslandSimulation(self.inner_model, specs, topology)
        outcome = simulation.run(seed)
        model_name = f"HX({self.inner_model.name})"
        return ExchangeOutcome(
            runs={
                code: replace(run, model_name=model_name)
                for code, run in outcome.runs.items()
            },
            borrow_events=outcome.borrow_events,
            pools=outcome.pools,
        )
