"""Horizontal (cross-cuisine) transmission (the paper's future work).

Sec. VII: "it is highly unlikely that cuisines evolved in isolation.
Analogous to languages, the propagation of culinary habits would have
been both vertical (time) as well as horizontal (regions)."

:class:`HorizontalExchangeSimulation` co-evolves several cuisines with
an inner copy-mutate model; at each recipe step, with probability
``exchange_rate`` the mother recipe is *borrowed* from another cuisine
(filtered to the borrower's ingredient universe) instead of copied from
the cuisine's own pool — a minimal model of migration and trade.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError, ParameterError
from repro.models.base import CopyMutateBase, EvolutionRun
from repro.models.params import CuisineSpec
from repro.models.state import EvolutionState
from repro.rng import SeedLike, ensure_rng

__all__ = ["HorizontalExchangeSimulation", "ExchangeOutcome"]


@dataclass(frozen=True)
class ExchangeOutcome:
    """Result of a co-evolution simulation.

    Attributes:
        runs: Per-cuisine evolution runs, keyed by region code.
        borrow_events: Count of cross-cuisine borrowings per borrower.
    """

    runs: dict[str, EvolutionRun]
    borrow_events: dict[str, int]


class HorizontalExchangeSimulation:
    """Co-evolves several cuisines with cross-cuisine recipe borrowing.

    Args:
        inner_model: A :class:`CopyMutateBase` subclass *instance* whose
            mutation machinery is reused for every cuisine.
        exchange_rate: Probability that a recipe step borrows its mother
            recipe from a random other cuisine.
    """

    def __init__(
        self,
        inner_model: CopyMutateBase,
        exchange_rate: float = 0.05,
    ):
        if not isinstance(inner_model, CopyMutateBase):
            raise ModelError(
                "horizontal exchange requires a copy-mutate inner model"
            )
        if not 0.0 <= exchange_rate <= 1.0:
            raise ParameterError(
                f"exchange_rate must be in [0, 1], got {exchange_rate}"
            )
        self.inner_model = inner_model
        self.exchange_rate = exchange_rate

    def run(
        self, specs: list[CuisineSpec], seed: SeedLike = None
    ) -> ExchangeOutcome:
        """Co-evolve all cuisines to their target sizes.

        Cuisines advance in round-robin order; each advances through the
        usual ∂-vs-φ alternation, but mother recipes are occasionally
        imported from a random other cuisine and filtered to ingredients
        the borrower knows (unknown ingredients are replaced with random
        pool members).
        """
        if len(specs) < 2:
            raise ModelError("horizontal exchange needs at least two cuisines")
        codes = [spec.region_code for spec in specs]
        if len(set(codes)) != len(codes):
            raise ModelError("cuisine specs must have distinct region codes")
        rng = ensure_rng(seed)
        model = self.inner_model

        states: dict[str, EvolutionState] = {}
        initial_sizes: dict[str, int] = {}
        for spec in specs:
            fitness = model.fitness.assign(spec.ingredient_ids, rng)
            n0 = min(model.params.derive_initial_recipes(spec.phi), spec.n_recipes)
            initial_sizes[spec.region_code] = n0
            states[spec.region_code] = EvolutionState(
                spec=spec,
                fitness=np.asarray(fitness, dtype=np.float64),
                rng=rng,
                initial_pool_size=model.params.initial_pool_size,
                initial_recipes=n0,
            )

        borrow_events = {code: 0 for code in codes}
        active = [spec for spec in specs]
        while active:
            still_active = []
            for spec in active:
                state = states[spec.region_code]
                if state.n >= spec.n_recipes:
                    continue
                if state.pool_ratio() >= spec.phi or not state.can_grow_pool():
                    self._recipe_step(state, specs, states, rng, borrow_events)
                else:
                    state.grow_pool()
                if state.n < spec.n_recipes:
                    still_active.append(spec)
            active = still_active

        runs = {
            spec.region_code: EvolutionRun(
                model_name=f"HX({model.name})",
                region_code=spec.region_code,
                transactions=states[spec.region_code].transactions(),
                final_pool_size=states[spec.region_code].m,
                initial_recipes=initial_sizes[spec.region_code],
                trace=states[spec.region_code].trace,
            )
            for spec in specs
        }
        return ExchangeOutcome(runs=runs, borrow_events=borrow_events)

    def _recipe_step(
        self,
        state: EvolutionState,
        specs: list[CuisineSpec],
        states: dict[str, EvolutionState],
        rng: np.random.Generator,
        borrow_events: dict[str, int],
    ) -> None:
        code = state.spec.region_code
        mother: list[int]
        if rng.random() < self.exchange_rate:
            donors = [spec.region_code for spec in specs if spec.region_code != code]
            donor_state = states[donors[int(rng.integers(0, len(donors)))]]
            donor_recipe = donor_state.recipes[donor_state.random_recipe_index()]
            known = set(state.spec.ingredient_ids)
            mother = [i for i in donor_recipe if i in known]
            # Refill foreign slots from the local pool.
            while len(mother) < len(donor_recipe):
                candidate = state.random_pool_ingredient()
                if candidate not in mother:
                    mother.append(candidate)
            borrow_events[code] += 1
        else:
            mother = state.recipes[state.random_recipe_index()]

        recipe = list(mother)
        params = self.inner_model.params
        for _g in range(params.mutations):
            state.trace.mutations_attempted += 1
            victim_position = int(rng.integers(0, len(recipe)))
            victim = recipe[victim_position]
            replacement = self.inner_model._choose_replacement(state, victim, rng)
            if replacement is None or replacement == victim:
                state.trace.mutations_rejected_duplicate += 1
                continue
            if state.fitness_of(replacement) <= state.fitness_of(victim):
                state.trace.mutations_rejected_fitness += 1
                continue
            if replacement in recipe:
                state.trace.mutations_rejected_duplicate += 1
                continue
            recipe[victim_position] = replacement
            state.trace.mutations_accepted += 1
        state.add_recipe(recipe)
