"""Model extensions implementing the paper's stated future work."""

from repro.models.extensions.horizontal import (
    ExchangeOutcome,
    HorizontalExchangeSimulation,
)
from repro.models.extensions.variable_size import VariableSizeCopyMutate

__all__ = [
    "ExchangeOutcome",
    "HorizontalExchangeSimulation",
    "VariableSizeCopyMutate",
]
