"""Variable recipe size copy-mutate (the paper's future work).

Sec. VII: "Future studies should explore the effect of variable recipe
sizes ...".  This extension augments the CM-R mutation step with
insertion and deletion moves so recipe sizes drift within the paper's
empirical bounds [2, 38] instead of staying pinned at s̄:

* with probability ``p_insert`` a pool ingredient is *added* (if the
  recipe is below the maximum size);
* with probability ``p_delete`` a random ingredient is *removed* (if
  above the minimum size);
* otherwise the standard fitness-gated replacement applies.
"""

from __future__ import annotations

import numpy as np

from repro.config import PAPER
from repro.errors import ParameterError
from repro.models.base import CopyMutateBase
from repro.models.params import ModelParams
from repro.models.registry import register_model
from repro.models.state import EvolutionState

__all__ = ["VariableSizeCopyMutate"]


class VariableSizeCopyMutate(CopyMutateBase):
    """CM-V: copy-mutate with size-changing moves.

    Args:
        params: Standard model parameters.
        fitness: Fitness strategy.
        p_insert: Probability a mutation is an insertion.
        p_delete: Probability a mutation is a deletion.
        min_size: Smallest allowed recipe (paper bound: 2).
        max_size: Largest allowed recipe (paper bound: 38).
        engine: Convenience override for ``params.engine``.  CM-V
            supports ``"reference"`` and ``"vectorized"`` (the
            ``"variable"`` kind); its recipes change length, so there
            is no fixed row width for the batched engine to stack —
            an ``engine="batched"`` request resolves to
            ``"vectorized"`` instead (DESIGN.md §7).
    """

    name = "CM-V"
    vectorized_kind = "variable"

    def __init__(
        self,
        params: ModelParams | None = None,
        fitness=None,
        p_insert: float = 0.15,
        p_delete: float = 0.15,
        min_size: int = PAPER.recipe_size_min,
        max_size: int = PAPER.recipe_size_max,
        engine: str | None = None,
    ):
        super().__init__(params=params, fitness=fitness, engine=engine)
        if p_insert < 0 or p_delete < 0 or p_insert + p_delete > 1:
            raise ParameterError(
                f"require p_insert, p_delete >= 0 and p_insert + p_delete "
                f"<= 1; got {p_insert}, {p_delete}"
            )
        if not 1 <= min_size <= max_size:
            raise ParameterError(
                f"invalid size bounds [{min_size}, {max_size}]"
            )
        self.p_insert = p_insert
        self.p_delete = p_delete
        self.min_size = min_size
        self.max_size = max_size

    @classmethod
    def default_params(cls) -> ModelParams:
        return ModelParams(mutations=PAPER.model_mutations_cm_r)

    def _recipe_step(
        self, state: EvolutionState, rng: np.random.Generator
    ) -> None:
        mother = state.recipes[state.random_recipe_index()]
        recipe = list(mother)
        for _g in range(self.params.mutations):
            state.trace.mutations_attempted += 1
            move = rng.random()
            if move < self.p_insert:
                if len(recipe) >= self.max_size:
                    continue
                candidate = state.random_pool_ingredient()
                if candidate in recipe:
                    state.trace.mutations_rejected_duplicate += 1
                    continue
                recipe.append(candidate)
                state.trace.mutations_accepted += 1
            elif move < self.p_insert + self.p_delete:
                if len(recipe) <= self.min_size:
                    continue
                recipe.pop(int(rng.integers(0, len(recipe))))
                state.trace.mutations_accepted += 1
            else:
                victim_position = int(rng.integers(0, len(recipe)))
                victim = recipe[victim_position]
                replacement = self._choose_replacement(state, victim, rng)
                if replacement is None or replacement == victim:
                    state.trace.mutations_rejected_duplicate += 1
                    continue
                if state.fitness_of(replacement) <= state.fitness_of(victim):
                    state.trace.mutations_rejected_fitness += 1
                    continue
                if replacement in recipe:
                    state.trace.mutations_rejected_duplicate += 1
                    continue
                recipe[victim_position] = replacement
                state.trace.mutations_accepted += 1
        state.add_recipe(recipe)

    def _choose_replacement(
        self,
        state: EvolutionState,
        victim: int,
        rng: np.random.Generator,
    ) -> int | None:
        return state.random_pool_ingredient()


register_model(VariableSizeCopyMutate.name, VariableSizeCopyMutate)
