"""Ensemble-level statistics beyond the aggregated curve.

Sec. V aggregates 100 runs into one rank-frequency curve; for diagnosis
and ablations it is equally useful to know how *dispersed* the runs are
and what the mutation machinery actually did.  This module summarizes an
ensemble's trace counters and the run-to-run variability of its curves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.itemsets import mine_frequent_itemsets
from repro.analysis.rank_frequency import curve_from_mining
from repro.config import DEFAULT_MINING, MiningConfig
from repro.errors import ModelError
from repro.models.base import EvolutionRun

__all__ = ["EnsembleStatistics", "summarize_ensemble"]


@dataclass(frozen=True)
class EnsembleStatistics:
    """Summary of an ensemble of evolution runs.

    Attributes:
        model_name: Model that produced the runs.
        n_runs: Number of runs summarized.
        mean_final_pool: Mean final ingredient-pool size ``m``.
        mean_recipes: Mean recipe-pool size (identical across runs for
            fixed specs; kept for generality).
        mutation_acceptance_rate: Accepted / attempted mutations, pooled
            over runs (0 for the null model).
        rejection_fitness_rate: Share of attempts rejected by the
            fitness comparison.
        rejection_duplicate_rate: Share rejected as duplicates.
        skip_no_candidate_rate: Share skipped for lack of a same-category
            candidate (CM-C/CM-M only).
        curve_length_mean: Mean per-run frequent-combination curve length.
        curve_length_std: Its standard deviation across runs.
        top_frequency_mean: Mean rank-1 relative support across runs.
        top_frequency_std: Its standard deviation.
    """

    model_name: str
    n_runs: int
    mean_final_pool: float
    mean_recipes: float
    mutation_acceptance_rate: float
    rejection_fitness_rate: float
    rejection_duplicate_rate: float
    skip_no_candidate_rate: float
    curve_length_mean: float
    curve_length_std: float
    top_frequency_mean: float
    top_frequency_std: float


def summarize_ensemble(
    runs: list[EvolutionRun] | tuple[EvolutionRun, ...],
    mining: MiningConfig = DEFAULT_MINING,
) -> EnsembleStatistics:
    """Summarize runs of one model on one cuisine.

    Raises:
        ModelError: If ``runs`` is empty or mixes models.
    """
    if not runs:
        raise ModelError("cannot summarize zero runs")
    names = {run.model_name for run in runs}
    if len(names) != 1:
        raise ModelError(f"runs mix models: {sorted(names)}")

    attempted = sum(run.trace.mutations_attempted for run in runs)
    accepted = sum(run.trace.mutations_accepted for run in runs)
    rejected_fitness = sum(
        run.trace.mutations_rejected_fitness for run in runs
    )
    rejected_duplicate = sum(
        run.trace.mutations_rejected_duplicate for run in runs
    )
    skipped = sum(
        run.trace.mutations_skipped_no_candidate for run in runs
    )
    denominator = max(attempted, 1)

    lengths = []
    top_frequencies = []
    for run in runs:
        result = mine_frequent_itemsets(
            run.transactions,
            min_support=mining.min_support,
            algorithm=mining.algorithm,
            max_size=mining.max_size,
        )
        curve = curve_from_mining(result, run.model_name)
        lengths.append(len(curve))
        top_frequencies.append(
            float(curve.frequencies[0]) if len(curve) else 0.0
        )

    return EnsembleStatistics(
        model_name=runs[0].model_name,
        n_runs=len(runs),
        mean_final_pool=float(
            np.mean([run.final_pool_size for run in runs])
        ),
        mean_recipes=float(np.mean([run.n_recipes for run in runs])),
        mutation_acceptance_rate=accepted / denominator,
        rejection_fitness_rate=rejected_fitness / denominator,
        rejection_duplicate_rate=rejected_duplicate / denominator,
        skip_no_candidate_rate=skipped / denominator,
        curve_length_mean=float(np.mean(lengths)),
        curve_length_std=float(np.std(lengths)),
        top_frequency_mean=float(np.mean(top_frequencies)),
        top_frequency_std=float(np.std(top_frequencies)),
    )
