"""The vectorized Algorithm 1 engine (``engine="vectorized"``).

The reference engine executes one scalar ``Generator`` round-trip per
random decision — the mother draw, every victim position, every
replacement candidate, every mixture coin — which makes per-draw numpy
call overhead the dominant cost of a run.  This engine removes that
overhead without changing the model dynamics:

* state lives in :class:`~repro.models.state.ArrayEvolutionState` —
  dense integer positions, array-backed fitness/category, contiguous
  per-category pool membership;
* all randomness is consumed as uniform [0, 1) variates from one
  block-buffered stream (:class:`UniformBuffer`), so a recipe step costs
  a single batched RNG call covering the mother draw plus all ``M``
  victim/candidate/coin draws, instead of ``2M+1`` scalar calls;
* integer draws are derived as ``⌊u·k⌋``, which lets one float batch
  serve draws over ranges that only become known mid-step (the victim's
  category size, the shrinking remaining-universe size).

Mutations within a step still apply **sequentially** — each sees the
recipe as left by the previous one, exactly like the reference loop — so
the accept/reject dynamics are identical; only the RNG *stream order*
differs.  That stream order is a versioned contract
(:data:`VECTORIZED_STREAM_VERSION`, part of the run-cache key): for a
fixed seed the engine is bit-identical across serial/thread/process
backends and across machines, and distribution-level equivalence with
the reference engine is asserted in
``tests/models/test_engine_equivalence.py``.  See DESIGN.md §5.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ModelError
from repro.models.state import ArrayEvolutionState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.models.base import CulinaryEvolutionModel, EvolutionRun
    from repro.models.params import CuisineSpec

__all__ = [
    "UniformBuffer",
    "VECTORIZED_STREAM_VERSION",
    "run_vectorized",
]

#: Version of the vectorized engine's RNG-stream contract.  Bump whenever
#: the order, count, or interpretation of consumed variates changes —
#: cached runs then key differently instead of replaying a stale stream.
VECTORIZED_STREAM_VERSION = 1

#: Uniform variates drawn per buffer refill.  Part of the stream
#: contract: refills discard any unconsumed tail, so changing the block
#: size changes the stream (bump :data:`VECTORIZED_STREAM_VERSION`).
BLOCK_SIZE = 16384


class UniformBuffer:
    """Block-buffered uniform [0, 1) stream over one ``Generator``.

    Serves scalar and small-vector draws from large pre-drawn blocks so
    the per-draw cost is a slice, not a ``Generator`` call.  Refills
    drop the unconsumed tail of the previous block (deterministically —
    the consumption pattern is fixed by the engine), and requests of at
    least a full block bypass the buffer.
    """

    __slots__ = ("_rng", "_buf", "_index", "_size")

    def __init__(self, rng: np.random.Generator, block: int = BLOCK_SIZE):
        self._rng = rng
        self._size = block
        self._buf = rng.random(block)
        self._index = 0

    def take(self, count: int) -> np.ndarray:
        """The next ``count`` variates as an ndarray view."""
        index = self._index
        end = index + count
        if end > self._size:
            if count >= self._size:
                return self._rng.random(count)
            self._buf = self._rng.random(self._size)
            index, end = 0, count
        self._index = end
        return self._buf[index:end]

    def one(self) -> float:
        """The next single variate as a Python float."""
        index = self._index
        if index >= self._size:
            self._buf = self._rng.random(self._size)
            index = 0
        self._index = index + 1
        return float(self._buf[index])

    def export_state(self) -> dict:
        """Picklable snapshot of the buffered block and cursor.

        The generator's own state is *not* included — the checkpoint
        layer snapshots ``rng.bit_generator.state`` separately, because
        the generator also serves full-block bypass draws outside the
        buffer (DESIGN.md §9).
        """
        return {
            "block": self._buf.copy(),
            "index": self._index,
            "size": self._size,
        }

    @classmethod
    def restore(
        cls, rng: np.random.Generator, payload: dict
    ) -> "UniformBuffer":
        """Rebuild a buffer from :meth:`export_state` output.

        Bypasses ``__init__`` — the constructor draws a first block,
        and a restored buffer must resume the snapshot's block and
        cursor without consuming any draws.
        """
        buffer = object.__new__(cls)
        buffer._rng = rng
        buffer._size = int(payload["size"])
        buffer._buf = np.array(payload["block"], dtype=np.float64)
        buffer._index = int(payload["index"])
        return buffer


def run_vectorized(
    model: "CulinaryEvolutionModel",
    spec: "CuisineSpec",
    rng: np.random.Generator,
    record_history: bool = False,
    checkpointer: "object | None" = None,
) -> "EvolutionRun":
    """Execute one Algorithm 1 run with batched draws.

    Drives :class:`~repro.models.state.ArrayEvolutionState` through the
    ∂-vs-φ alternation with the recipe step selected by the model's
    ``vectorized_kind`` (``"pool"``/``"category"``/``"mixture"`` for the
    copy-mutate family, ``"null"`` for NM).

    Args:
        model: A model whose class declares ``vectorized_kind``.
        spec: Cuisine inputs.
        rng: The run's generator (initialization draws use it directly;
            the main loop consumes it through a :class:`UniformBuffer`).
        record_history: Also record the ``(m, n)`` trajectory.
        checkpointer: Optional :class:`~repro.runtime.checkpoint.
            RunCheckpointer`.  A *step* is one loop iteration (one pool
            growth, one recipe, or one whole NM batch); after each, the
            checkpointer may snapshot the complete mid-run state —
            generator, buffer block + cursor, state containers,
            counters, history — and a later call that finds a snapshot
            resumes from it bit-identically (DESIGN.md §9).

    Raises:
        ModelError: If the model class does not support the vectorized
            engine (``vectorized_kind`` unset).
    """
    from repro.models.base import EvolutionRun

    kind = type(model).__dict__.get("vectorized_kind")
    if kind is None:
        raise ModelError(
            f"model {type(model).__qualname__} does not support the "
            "vectorized engine; run it with engine='reference'"
        )
    params = model.params
    snapshot = checkpointer.load() if checkpointer is not None else None
    if snapshot is None:
        fitness_values = np.asarray(
            model.fitness.assign(spec.ingredient_ids, rng), dtype=np.float64
        )
        n0 = min(params.derive_initial_recipes(spec.phi), spec.n_recipes)
        state = ArrayEvolutionState(
            spec=spec,
            fitness=fitness_values,
            rng=rng,
            initial_pool_size=params.initial_pool_size,
            initial_recipes=n0,
        )
        buffer = UniformBuffer(rng)
    else:
        # Resume: every draw the fresh path would have consumed by this
        # step is encoded in the restored generator + buffer cursor, so
        # the continuation replays the uninterrupted stream exactly.
        rng.bit_generator.state = snapshot["rng_state"]
        n0 = snapshot["n0"]
        state = ArrayEvolutionState.restore(spec, snapshot["state"])
        buffer = UniformBuffer.restore(rng, snapshot["buffer"])

    # Hot-loop locals (attribute lookups pulled out of the loop).
    take = buffer.take
    one = buffer.one
    pool = state.pool
    remaining = state.remaining
    recipes = state.recipes
    fitness = state.fitness
    category_codes = state.category_codes
    pool_by_code = state.pool_by_code
    grow_pool = state.grow_pool

    phi = spec.phi
    target = spec.n_recipes
    mutations = params.mutations
    skip_duplicates = params.duplicate_policy == "skip"
    fallback_random = params.category_fallback == "random"
    mixture_p = params.mixture_category_probability
    null_from_pool = getattr(model, "sample_from", "pool") == "pool"
    universe_size = len(spec.ingredient_ids)
    recipe_size = spec.recipe_size

    # Per-step draw layout for the copy-mutate kinds:
    #   [mother, M victim positions, M candidate selectors, (M coins)]
    # CM-V's "variable" kind draws a fixed
    #   [mother, M move coins, M positions, M selectors]
    # block instead, discarding the draws its taken branch does not use
    # — a fixed layout keeps the stream contract simple even though the
    # reference engine consumes a variable number of draws per move.
    category_mode = kind == "category"
    mixture_mode = kind == "mixture"
    null_mode = kind == "null"
    variable_mode = kind == "variable"
    draws_per_step = (
        1 + (3 if mixture_mode or variable_mode else 2) * mutations
    )
    if variable_mode:
        p_insert = model.p_insert
        p_insert_or_delete = model.p_insert + model.p_delete
        min_size = model.min_size
        max_size = model.max_size

    if snapshot is None:
        m = len(pool)
        n = len(recipes)
        attempted = accepted = 0
        rejected_fitness = rejected_duplicate = skipped_no_candidate = 0
        step = 0
        history: list[tuple[int, int]] | None = (
            [(m, n)] if record_history else None
        )
    else:
        m = snapshot["m"]
        n = snapshot["n"]
        attempted = snapshot["attempted"]
        accepted = snapshot["accepted"]
        rejected_fitness = snapshot["rejected_fitness"]
        rejected_duplicate = snapshot["rejected_duplicate"]
        skipped_no_candidate = snapshot["skipped_no_candidate"]
        step = snapshot["step"]
        history = (
            list(snapshot["history"]) if record_history else None
        )

    if checkpointer is not None:
        def _capture() -> dict:
            # Pure reads of live locals/state — consumes no RNG, so a
            # snapshotted step's stream position equals the
            # uninterrupted run's (the bit-identity requirement).
            return {
                "engine": "vectorized",
                "step": step,
                "rng_state": rng.bit_generator.state,
                "buffer": buffer.export_state(),
                "state": state.export_state(),
                "m": m,
                "n": n,
                "n0": n0,
                "attempted": attempted,
                "accepted": accepted,
                "rejected_fitness": rejected_fitness,
                "rejected_duplicate": rejected_duplicate,
                "skipped_no_candidate": skipped_no_candidate,
                "history": None if history is None else list(history),
            }

    while n < target:
        # The branch predicate must be the exact float expression of the
        # reference loop (∂ = m/n >= φ), so both engines walk the same
        # deterministic (m, n) trajectory.
        if m / n < phi and remaining:
            grow_pool(one())
            m += 1
        elif null_mode:
            # NM: fresh recipes of distinct uniform draws.  The pool is
            # frozen until ∂ next drops below φ, so every recipe step
            # until then comes out of one batched draw: rejection-sample
            # whole rows at once (exactly uniform over distinct index
            # sets, conditional on acceptance) and repair the few rows
            # with within-row collisions by Floyd's sampling.
            if remaining:
                cap = int(m / phi)
                while m / (cap + 1) >= phi:
                    cap += 1
                while cap > n and m / cap < phi:
                    cap -= 1
                steps = min(max(cap - n + 1, 1), target - n)
            else:
                steps = target - n
            count = m if null_from_pool else universe_size
            size = recipe_size if recipe_size <= count else count
            first_upper = count - size
            index_matrix = (
                np.multiply(take(steps * size), count)
                .astype(np.intp)
                .reshape(steps, size)
            )
            if size > 1:
                ordered = np.sort(index_matrix, axis=1)
                collided = np.nonzero(
                    (ordered[:, 1:] == ordered[:, :-1]).any(axis=1)
                )[0]
                for row_index in collided.tolist():
                    u = take(size).tolist()
                    chosen: list[int] = []
                    draw = 0
                    for upper in range(first_upper, count):
                        index = int(u[draw] * (upper + 1))
                        draw += 1
                        if index in chosen:
                            index = upper
                        chosen.append(index)
                    index_matrix[row_index] = chosen
            if null_from_pool:
                rows = np.asarray(pool, dtype=np.intp)[index_matrix]
            else:
                rows = index_matrix
            recipes.extend(rows.tolist())
            if history is not None:
                history.extend(
                    (m, past) for past in range(n + 1, n + steps + 1)
                )
            n += steps
            step += 1
            if checkpointer is not None:
                checkpointer.after_step(step, _capture)
            continue
        elif variable_mode:
            # CM-V: the replacement step of CM-R plus size-changing
            # insert/delete moves (paper Sec. VII future work).  Recipe
            # length changes mid-step, so every integer draw rescales
            # against the *current* length; size-bound violations fall
            # through silently (no counter), matching the reference
            # step, and in-row duplicates always reject — CM-V never
            # honors duplicate_policy="allow".
            u = take(draws_per_step).tolist()
            row = recipes[int(u[0] * n)].copy()
            for g in range(mutations):
                attempted += 1
                move = u[1 + g]
                length = len(row)
                if move < p_insert:
                    if length >= max_size:
                        continue
                    candidate = pool[int(u[1 + 2 * mutations + g] * m)]
                    if candidate in row:
                        rejected_duplicate += 1
                        continue
                    row.append(candidate)
                    accepted += 1
                elif move < p_insert_or_delete:
                    if length <= min_size:
                        continue
                    row.pop(int(u[1 + mutations + g] * length))
                    accepted += 1
                else:
                    position = int(u[1 + mutations + g] * length)
                    victim = row[position]
                    candidate = pool[int(u[1 + 2 * mutations + g] * m)]
                    if candidate == victim:
                        rejected_duplicate += 1
                        continue
                    if fitness[candidate] <= fitness[victim]:
                        rejected_fitness += 1
                        continue
                    if candidate in row:
                        rejected_duplicate += 1
                        continue
                    row[position] = candidate
                    accepted += 1
            recipes.append(row)
            n += 1
        else:
            u = take(draws_per_step).tolist()
            mother = recipes[int(u[0] * n)]
            row = mother.copy()
            length = len(row)
            for g in range(mutations):
                attempted += 1
                position = int(u[1 + g] * length)
                victim = row[position]
                selector = u[1 + mutations + g]
                if category_mode or (
                    mixture_mode and u[1 + 2 * mutations + g] < mixture_p
                ):
                    members = pool_by_code[category_codes[victim]]
                    count = len(members)
                    if count == 0:
                        if not fallback_random:
                            skipped_no_candidate += 1
                            continue
                        candidate = pool[int(selector * m)]
                    else:
                        candidate = members[int(selector * count)]
                else:
                    candidate = pool[int(selector * m)]
                if candidate == victim:
                    rejected_duplicate += 1
                    continue
                if fitness[candidate] <= fitness[victim]:
                    rejected_fitness += 1
                    continue
                if candidate in row:
                    if skip_duplicates:
                        rejected_duplicate += 1
                        continue
                    # "allow": the duplicate collapses when the recipe
                    # is treated as a set, shrinking it by one.
                row[position] = candidate
                accepted += 1
            recipes.append(row)
            n += 1
        if history is not None:
            history.append((m, n))
        step += 1
        if checkpointer is not None:
            checkpointer.after_step(step, _capture)

    trace = state.trace
    trace.recipes_added = n - n0
    trace.mutations_attempted = attempted
    trace.mutations_accepted = accepted
    trace.mutations_rejected_fitness = rejected_fitness
    trace.mutations_rejected_duplicate = rejected_duplicate
    trace.mutations_skipped_no_candidate = skipped_no_candidate
    return EvolutionRun(
        model_name=model.name,
        region_code=spec.region_code,
        transactions=state.transactions(),
        final_pool_size=m,
        initial_recipes=n0,
        trace=trace,
        history=tuple(history) if history is not None else None,
    )
