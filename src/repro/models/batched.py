"""The cross-run batched ensemble engine (``engine="batched"``).

The vectorized engine (DESIGN.md §5) batches the draws *within* one
run; an ensemble still pays per-run Python dispatch — 100 runs walk
22k+ recipe steps each, one step at a time.  This engine stacks an
entire same-cell ensemble into ``(runs, …)`` arrays and advances **all**
runs together.  Two structural facts make that possible without
changing any run's result:

* **Lockstep trajectories.**  The ∂-vs-φ alternation is a pure function
  of ``(m₀, n₀, φ, N, |I|)`` — no random draw enters the branch
  predicate — so every run of a (model, cuisine) cell takes the *same*
  step type at every iteration.  Control flow never diverges across the
  stacked runs.
* **Frozen segments.**  Between two pool-growth events, the pool, the
  per-category membership and the fitness table are all constant, so
  every recipe step of the segment — across every run — depends only on
  its mother row and its own draws.  The engine therefore resolves a
  whole segment as a handful of numpy passes over ``(runs·steps, …)``
  arrays, falling back to small follow-up waves only for the rare steps
  whose mother was itself created earlier in the same segment.

**Bit-identity to the vectorized engine** (DESIGN.md §7): each stacked
run keeps its *own* ``Generator`` and its own row of the block buffer,
and :class:`BatchedStreams` replays the exact
:class:`~repro.models.vectorized.UniformBuffer` consumption pattern per
run — same block size, same refill-drops-tail semantics, same
full-block bypass.  A run executed through this engine is therefore
bit-identical to the same ``(model, spec, seed)`` run under
``engine="vectorized"``: same transactions, same trace, same history.
The batch composition is immaterial — any subset of seeds, in any
order, yields the same per-run results — which is what keeps per-run
results individually cacheable (:data:`BATCHED_STREAM_VERSION` is the
stream-contract version the run-cache key carries).

Models opt in through their ``vectorized_kind``: the copy-mutate kinds
(``"pool"``/``"category"``/``"mixture"``) and ``"null"`` are supported
(:data:`BATCHED_KINDS`); CM-V's variable-length recipes have no fixed
row width to stack, so a batched request on it resolves to the
vectorized engine instead (see
:meth:`repro.models.base.CulinaryEvolutionModel.resolve_engine`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import ModelError
from repro.models.state import (
    CATEGORIES_BY_CODE,
    CATEGORY_CODES,
    EvolutionTraceCounters,
)
from repro.models.vectorized import BLOCK_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.models.base import CulinaryEvolutionModel, EvolutionRun
    from repro.models.params import CuisineSpec

__all__ = [
    "BATCHED_KINDS",
    "BATCHED_STREAM_VERSION",
    "BatchedStreams",
    "BatchedTransactions",
    "run_batched",
]

#: Version of the batched engine's RNG-stream contract.  The contract
#: is *per run*: every stacked run consumes its own generator exactly
#: like the vectorized engine's ``UniformBuffer`` would, so version 1
#: is defined as "bit-identical to VECTORIZED_STREAM_VERSION 1 per
#: run".  Bump on any change to the per-run draw sequence; cached runs
#: then key differently instead of replaying a stale stream.
BATCHED_STREAM_VERSION = 1

#: ``vectorized_kind`` values the batched engine can stack.  CM-V's
#: ``"variable"`` kind is absent: its recipes change length, so there is
#: no fixed row width to lay the ensemble out on.
BATCHED_KINDS = ("pool", "category", "mixture", "null")

#: Largest number of recipe steps resolved in one array pass.  Bounds
#: peak memory (draws are ``(runs, steps, draws_per_step)`` float64)
#: without affecting results: a segment split into chunks consumes the
#: per-run streams identically, and later chunks read earlier chunks'
#: rows from the shared recipe array exactly like a later segment would.
_MAX_SEGMENT = 4096


class BatchedStreams:
    """Per-run block-buffered uniform streams over stacked generators.

    One :class:`~repro.models.vectorized.UniformBuffer` per run, stored
    as one ``(runs, BLOCK_SIZE)`` matrix with a per-run cursor — the
    "per-run stream offsets" of DESIGN.md §7.  Every method reproduces
    the buffer's semantics run by run (refills drop the unconsumed
    tail; requests of at least a full block bypass the buffer), which
    is what pins batched runs bit-identical to vectorized ones.
    """

    __slots__ = ("_rngs", "_blocks", "_index", "_size", "_rows")

    def __init__(
        self, rngs: Sequence[np.random.Generator], block: int = BLOCK_SIZE
    ):
        self._rngs = list(rngs)
        self._size = block
        self._blocks = np.empty((len(self._rngs), block), dtype=np.float64)
        for row, rng in enumerate(self._rngs):
            self._blocks[row] = rng.random(block)
        self._index = np.zeros(len(self._rngs), dtype=np.intp)
        self._rows = np.arange(len(self._rngs))

    def one_each(self) -> np.ndarray:
        """One variate per run — each run's ``UniformBuffer.one()``."""
        index = self._index
        size = self._size
        if (index >= size).any():
            for row in np.nonzero(index >= size)[0].tolist():
                self._blocks[row] = self._rngs[row].random(size)
                index[row] = 0
        u = self._blocks[self._rows, index]
        index += 1
        return u

    def take_each(self, takes: int, count: int) -> np.ndarray:
        """Per run, ``takes`` successive ``take(count)`` calls.

        Returns a ``(runs, takes, count)`` array whose row ``r`` holds
        exactly the variates ``takes`` consecutive
        ``UniformBuffer.take(count)`` calls would return for run ``r``.
        """
        runs = len(self._rngs)
        size = self._size
        if count == 0:
            return np.empty((runs, takes, 0), dtype=np.float64)
        if count >= size:
            # Full-block bypass: each take comes straight from the
            # generator and the buffer cursor does not move.
            out = np.empty((runs, takes, count), dtype=np.float64)
            for row, rng in enumerate(self._rngs):
                for t in range(takes):
                    out[row, t] = rng.random(count)
            return out
        need = takes * count
        index = self._index
        fits = index <= size - need
        if fits.all():
            cols = index[:, None] + np.arange(need)
            out = np.take_along_axis(self._blocks, cols, axis=1)
            index += need
            return out.reshape(runs, takes, count)
        out = np.empty((runs, need), dtype=np.float64)
        fast = np.nonzero(fits)[0]
        if fast.size:
            cols = index[fast][:, None] + np.arange(need)
            out[fast] = np.take_along_axis(self._blocks[fast], cols, axis=1)
            index[fast] += need
        for row in np.nonzero(~fits)[0].tolist():
            out[row] = self._walk_run(row, takes, count)
        return out.reshape(runs, takes, count)

    def _walk_run(self, row: int, takes: int, count: int) -> np.ndarray:
        """``takes`` successive ``take(count)`` calls for one run (refill path)."""
        size = self._size
        rng = self._rngs[row]
        i = int(self._index[row])
        pieces = []
        done = 0
        while done < takes:
            avail = (size - i) // count
            if avail == 0:
                self._blocks[row] = rng.random(size)
                i = 0
                avail = size // count
            chunk = min(avail, takes - done)
            pieces.append(self._blocks[row, i : i + chunk * count].copy())
            i += chunk * count
            done += chunk
        self._index[row] = i
        return pieces[0] if len(pieces) == 1 else np.concatenate(pieces)

    def take_run(self, row: int, takes: int, count: int) -> np.ndarray:
        """``takes`` successive ``take(count)`` calls for a single run.

        Lets the NM collision repair gather all of one run's repair
        draws in one buffered walk; per-take semantics are exactly
        ``UniformBuffer.take`` (refill drops the tail, full-block
        requests bypass the buffer without moving the cursor).
        """
        if count >= self._size:
            rng = self._rngs[row]
            return np.stack([rng.random(count) for _ in range(takes)])
        return self._walk_run(row, takes, count).reshape(takes, count)

    def export_state(self) -> dict:
        """Picklable snapshot of every run's block and cursor.

        Generator states are excluded — the checkpoint layer snapshots
        each ``rng.bit_generator.state`` separately (DESIGN.md §9).
        """
        return {
            "blocks": self._blocks.copy(),
            "index": self._index.copy(),
            "size": self._size,
        }

    @classmethod
    def restore(
        cls, rngs: Sequence[np.random.Generator], payload: dict
    ) -> "BatchedStreams":
        """Rebuild streams from :meth:`export_state` output.

        Bypasses ``__init__`` — the constructor draws every run's first
        block; a restored stream must resume the snapshot's blocks and
        cursors without consuming any draws.
        """
        streams = object.__new__(cls)
        streams._rngs = list(rngs)
        streams._size = int(payload["size"])
        streams._blocks = np.array(payload["blocks"], dtype=np.float64)
        streams._index = np.array(payload["index"], dtype=np.intp)
        streams._rows = np.arange(len(streams._rngs))
        return streams


class BatchedTransactions(Sequence):
    """One batched run's recipe pool, built into frozensets on demand.

    A paper-scale ensemble held as eager ``frozenset`` lists is ~2.3
    million small container objects (100 runs × 23k recipes) — the
    allocator cost of *holding* them dwarfs the simulation itself.  The
    batched engine therefore hands each run this compact view instead: a
    ``(n_recipes, row_width)`` int32 matrix of universe positions
    (shared with the sibling runs of its batch) plus the cuisine's
    canonical ingredient-id objects, from which recipe sets are
    materialized only when read.  Every recipe of every run references
    the same few hundred id objects, exactly as the other engines'
    eager lists do.

    The view behaves as the ``Sequence[frozenset[int]]`` the rest of
    the codebase consumes: it iterates, indexes (slices return eager
    lists), and compares equal to the eager list the vectorized engine
    would produce for the same run.  It also *pickles as* that plain
    list, so a cached batched run round-trips to the eager
    representation (DESIGN.md §7).

    Reads are deliberately not memoized — iterating twice materializes
    twice, keeping memory bounded for consumers that stream over an
    ensemble.  Use :meth:`materialize` when repeated random access is
    worth an eager copy.
    """

    __slots__ = ("_positions", "_lengths", "_ids")

    def __init__(
        self,
        positions: np.ndarray,
        lengths: list[int] | None,
        ids: list[int],
    ):
        self._positions = positions
        self._lengths = lengths
        self._ids = ids

    def __len__(self) -> int:
        return len(self._positions)

    def _one(self, index: int) -> frozenset:
        row = self._positions[index].tolist()
        if self._lengths is not None:
            row = row[: self._lengths[index]]
        ids = self._ids
        return frozenset([ids[position] for position in row])

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [
                self._one(i) for i in range(*index.indices(len(self)))
            ]
        return self._one(index)

    def __iter__(self):
        ids = self._ids
        if self._lengths is None:
            for row in self._positions.tolist():
                yield frozenset([ids[position] for position in row])
        else:
            for row, length in zip(self._positions.tolist(), self._lengths):
                yield frozenset(
                    [ids[position] for position in row[:length]]
                )

    def materialize(self) -> list[frozenset]:
        """An eager ``list[frozenset[int]]`` copy of the pool."""
        return list(self)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, (BatchedTransactions, list, tuple)):
            if len(other) != len(self):
                return False
            return all(ours == theirs for ours, theirs in zip(self, other))
        return NotImplemented

    # Mutable-sequence semantics (lists are unhashable); parity keeps
    # the two transaction representations interchangeable.
    __hash__ = None  # type: ignore[assignment]

    def __reduce__(self):
        # Pickle as the eager list: cache entries and cross-process
        # payloads carry the same representation regardless of engine.
        return (list, (self.materialize(),))

    def __repr__(self) -> str:
        return f"<BatchedTransactions of {len(self)} recipes>"


def run_batched(
    model: "CulinaryEvolutionModel",
    spec: "CuisineSpec",
    rngs: Sequence[np.random.Generator],
    record_history: bool = False,
    checkpointer: "object | None" = None,
) -> list["EvolutionRun"]:
    """Execute one Algorithm 1 run per generator, all runs stacked.

    Args:
        model: A model whose ``vectorized_kind`` is in
            :data:`BATCHED_KINDS`.
        spec: Cuisine inputs, shared by every run.
        rngs: One generator per run (from
            :func:`repro.rng.rng_from_seed`); result order follows
            generator order.
        record_history: Also record the (shared, lockstep) ``(m, n)``
            trajectory.
        checkpointer: Optional
            :class:`repro.runtime.checkpoint.RunCheckpointer`.  When
            set, the loop offers a snapshot after every event — pool
            growth, null batch, or copy-mutate chunk — and resumes from
            the checkpointer's latest snapshot instead of initializing,
            bit-identically to an uninterrupted run (DESIGN.md §9).
            The generators must be fresh (same seeds as the original
            run); their states are restored from the snapshot.

    Returns:
        One :class:`~repro.models.base.EvolutionRun` per generator,
        each bit-identical to the same run under ``engine="vectorized"``.

    Raises:
        ModelError: If the model's kind cannot be stacked (unset, or
            CM-V's variable-length ``"variable"`` kind).
    """
    from repro.models.base import EvolutionRun

    kind = type(model).__dict__.get("vectorized_kind")
    if kind not in BATCHED_KINDS:
        raise ModelError(
            f"model {type(model).__qualname__} does not support the "
            f"batched engine (vectorized_kind={kind!r}); run it with "
            "engine='vectorized' or engine='reference'"
        )
    runs = len(rngs)
    if runs == 0:
        return []

    params = model.params
    universe_size = len(spec.ingredient_ids)
    m0 = min(params.initial_pool_size, universe_size)
    if m0 < 1:
        raise ModelError("initial pool must hold at least one ingredient")
    n0 = min(params.derive_initial_recipes(spec.phi), spec.n_recipes)
    target = spec.n_recipes
    phi = spec.phi
    recipe_size = spec.recipe_size

    category_mode = kind == "category"
    mixture_mode = kind == "mixture"
    null_mode = kind == "null"
    mutations = params.mutations
    skip_duplicates = params.duplicate_policy == "skip"
    fallback_random = params.category_fallback == "random"
    mixture_p = params.mixture_category_probability
    null_from_pool = getattr(model, "sample_from", "pool") == "pool"
    draws_per_step = 1 + (3 if mixture_mode else 2) * mutations

    category_codes = np.array(
        [CATEGORY_CODES[category] for category in spec.categories],
        dtype=np.intp,
    )
    n_codes = len(CATEGORIES_BY_CODE)
    initial_length = min(recipe_size, m0)
    row_width = (
        min(recipe_size, universe_size) if null_mode else initial_length
    )

    # ------------------------------------------------------------------
    # Stacked state: run-major arrays, one row per run.  Valid column
    # counts (m, rem, n) are lockstep scalars shared by every run.
    # ------------------------------------------------------------------
    fitness = np.empty((runs, universe_size), dtype=np.float64)
    pool = np.zeros((runs, universe_size), dtype=np.intp)
    remaining = np.zeros((runs, universe_size), dtype=np.intp)
    members = np.zeros((runs, n_codes, universe_size), dtype=np.intp)
    counts = np.zeros((runs, n_codes), dtype=np.intp)
    recipes = np.zeros((runs, target, row_width), dtype=np.int32)
    lengths = np.empty(target, dtype=np.intp)
    lengths[:n0] = initial_length

    snapshot = checkpointer.load() if checkpointer is not None else None
    if snapshot is None:
        # Per-run initialization replays the vectorized engine's draw
        # order exactly: fitness assignment, then the pool `choice`,
        # then one `choice` per initial recipe, then the first buffer
        # block (drawn by BatchedStreams below).  Runs are independent
        # generators, so the cross-run loop order is immaterial.
        for row, rng in enumerate(rngs):
            fitness[row] = np.asarray(
                model.fitness.assign(spec.ingredient_ids, rng),
                dtype=np.float64,
            )
            picked = rng.choice(universe_size, size=m0, replace=False)
            mask = np.zeros(universe_size, dtype=bool)
            mask[picked] = True
            pool_row = np.nonzero(mask)[0]
            pool[row, :m0] = pool_row
            remaining[row, : universe_size - m0] = np.nonzero(~mask)[0]
            codes_row = category_codes[pool_row]
            for code in range(n_codes):
                selected = pool_row[codes_row == code]
                members[row, code, : len(selected)] = selected
                counts[row, code] = len(selected)
            for i in range(n0):
                drawn = rng.choice(m0, size=initial_length, replace=False)
                recipes[row, i, :initial_length] = pool_row[
                    drawn.astype(np.intp)
                ]
        streams = BatchedStreams(rngs)

        m = m0
        n = n0
        rem = universe_size - m0
        attempted = 0
        ingredients_added = 0
        accepted = np.zeros(runs, dtype=np.float64)
        rejected_fitness = np.zeros(runs, dtype=np.float64)
        rejected_duplicate = np.zeros(runs, dtype=np.float64)
        skipped_no_candidate = np.zeros(runs, dtype=np.float64)
        history: list[tuple[int, int]] | None = (
            [(m, n)] if record_history else None
        )
        step = 0
    else:
        # Resume: restore per-run generator states, stacked planes,
        # stream cursors and lockstep scalars exactly as captured; the
        # init loop is skipped because its draws already happened
        # before the snapshot was taken.
        for rng, rng_state in zip(rngs, snapshot["rng_states"]):
            rng.bit_generator.state = rng_state
        fitness[:] = snapshot["fitness"]
        pool[:] = snapshot["pool"]
        remaining[:] = snapshot["remaining"]
        members[:] = snapshot["members"]
        counts[:] = snapshot["counts"]
        recipes[:] = snapshot["recipes"]
        lengths[:] = snapshot["lengths"]
        streams = BatchedStreams.restore(rngs, snapshot["streams"])

        m = snapshot["m"]
        n = snapshot["n"]
        rem = snapshot["rem"]
        attempted = snapshot["attempted"]
        ingredients_added = snapshot["ingredients_added"]
        accepted = np.array(snapshot["accepted"], dtype=np.float64)
        rejected_fitness = np.array(
            snapshot["rejected_fitness"], dtype=np.float64
        )
        rejected_duplicate = np.array(
            snapshot["rejected_duplicate"], dtype=np.float64
        )
        skipped_no_candidate = np.array(
            snapshot["skipped_no_candidate"], dtype=np.float64
        )
        history = list(snapshot["history"]) if record_history else None
        step = snapshot["step"]
    row_index = np.arange(runs)

    if checkpointer is not None:

        def _capture() -> dict:
            # Reads the loop's live locals at call time; after_step only
            # calls it when a snapshot is actually due.
            return {
                "engine": "batched",
                "step": step,
                "rng_states": [rng.bit_generator.state for rng in rngs],
                "streams": streams.export_state(),
                "fitness": fitness.copy(),
                "pool": pool.copy(),
                "remaining": remaining.copy(),
                "members": members.copy(),
                "counts": counts.copy(),
                "recipes": recipes.copy(),
                "lengths": lengths.copy(),
                "m": m,
                "n": n,
                "rem": rem,
                "attempted": attempted,
                "ingredients_added": ingredients_added,
                "accepted": accepted.copy(),
                "rejected_fitness": rejected_fitness.copy(),
                "rejected_duplicate": rejected_duplicate.copy(),
                "skipped_no_candidate": skipped_no_candidate.copy(),
                "history": None if history is None else list(history),
            }

    def mutate_entries(
        rows: np.ndarray, draws: np.ndarray, run_of: np.ndarray
    ) -> np.ndarray:
        """Apply the M sequential mutations to every (run, step) entry.

        ``rows`` is ``(entries, length)`` and is mutated in place;
        ``draws`` is the entries' ``(entries, draws_per_step)`` variate
        rows; ``run_of`` maps each entry back to its run for state
        lookups and counter attribution.  The gate order per mutation is
        the vectorized engine's exactly: no-candidate skip, candidate ==
        victim, fitness, in-row duplicate.
        """
        nonlocal attempted
        entries, length = rows.shape
        # Flat views + hoisted row bases turn every per-mutation state
        # lookup into a 1-D ``take`` — same integer arithmetic as the
        # 2-D/3-D fancy indexing it replaces, identical results.  The
        # caller always passes freshly-copied (C-contiguous) rows, so
        # the reshape is a view and in-place scatters land in ``rows``.
        rows_flat = rows.reshape(-1)
        entry_base = np.arange(entries) * length
        row_base = run_of * universe_size
        positions = (draws[:, 1 : 1 + mutations] * length).astype(np.intp)
        selectors = draws[:, 1 + mutations : 1 + 2 * mutations]
        fit_flat = fitness.reshape(-1)
        pool_candidates = pool.reshape(-1).take(
            row_base[:, None] + (selectors * m).astype(np.intp)
        )
        if category_mode or mixture_mode:
            counts_flat = counts.reshape(-1)
            members_flat = members.reshape(-1)
            code_base = run_of * n_codes
        if mixture_mode:
            use_category = (
                draws[:, 1 + 2 * mutations : 1 + 3 * mutations] < mixture_p
            )
        acc = np.zeros(entries, dtype=np.int64)
        rej_fit = np.zeros(entries, dtype=np.int64)
        rej_dup = np.zeros(entries, dtype=np.int64)
        skipped = np.zeros(entries, dtype=np.int64)
        for g in range(mutations):
            flat_position = entry_base + positions[:, g]
            victim = rows_flat.take(flat_position)
            active = None
            if category_mode or mixture_mode:
                code_key = code_base + category_codes.take(victim)
                code_count = counts_flat.take(code_key)
                have = code_count > 0
                category_candidate = members_flat.take(
                    code_key * universe_size
                    + (selectors[:, g] * code_count).astype(np.intp)
                )
                if mixture_mode:
                    want_category = use_category[:, g]
                    picked_category = want_category & have
                else:
                    # Pure category mode wants the category every time;
                    # the all-True mask would be dead weight.
                    picked_category = have
                candidate = np.where(
                    picked_category, category_candidate, pool_candidates[:, g]
                )
                if not fallback_random:
                    skip = (
                        want_category & ~have if mixture_mode else ~have
                    )
                    skipped += skip
                    active = have if not mixture_mode else ~skip
            else:
                candidate = pool_candidates[:, g]
            not_victim = candidate != victim
            better = fit_flat.take(row_base + candidate) > fit_flat.take(
                row_base + victim
            )
            dup_victim = ~not_victim
            fit_reject = not_victim & ~better
            consider = not_victim & better
            if active is not None:
                dup_victim &= active
                fit_reject &= active
                consider &= active
            in_row = (rows == candidate[:, None]).any(axis=1)
            if skip_duplicates:
                rej_dup += consider & in_row
                apply = consider & ~in_row
            else:
                apply = consider
            rej_dup += dup_victim
            rej_fit += fit_reject
            acc += apply
            # Non-applied positions already hold their victim; scatter
            # only the accepted candidates.
            hit = np.nonzero(apply)[0]
            rows_flat[flat_position.take(hit)] = candidate.take(hit)
        accepted[:] += np.bincount(run_of, weights=acc, minlength=runs)
        rejected_fitness[:] += np.bincount(
            run_of, weights=rej_fit, minlength=runs
        )
        rejected_duplicate[:] += np.bincount(
            run_of, weights=rej_dup, minlength=runs
        )
        skipped_no_candidate[:] += np.bincount(
            run_of, weights=skipped, minlength=runs
        )
        attempted += mutations
        return rows

    def copy_mutate_segment(segment_start: int, steps: int) -> None:
        """Resolve ``steps`` consecutive recipe steps for every run.

        Wave 0 handles every (run, step) whose mother predates the
        segment — the overwhelming majority; follow-up waves handle
        steps whose mother row was itself produced in this segment, in
        dependency order (each wave's mothers were finished by an
        earlier wave, so per-run semantics match the sequential loop).
        """
        nonlocal attempted
        draws = streams.take_each(steps, draws_per_step)
        mother = (
            draws[:, :, 0] * (segment_start + np.arange(steps))
        ).astype(np.intp)
        dependency = mother - segment_start
        rows_out = np.empty(
            (runs, steps, initial_length), dtype=np.intp
        )
        done = np.zeros((runs, steps), dtype=bool)
        run_of, step_of = np.nonzero(dependency < 0)
        rows = recipes[run_of, mother[run_of, step_of]].astype(np.intp)
        while True:
            saved_attempted = attempted
            mutate_entries(rows, draws[run_of, step_of], run_of)
            # `attempted` is lockstep (M per step per run); mutate_entries
            # bumps it once per call, so correct it to count steps.
            attempted = saved_attempted
            rows_out[run_of, step_of] = rows
            done[run_of, step_of] = True
            if done.all():
                break
            run_todo, step_todo = np.nonzero(~done)
            ready = done[
                run_todo, dependency[run_todo, step_todo]
            ]
            run_of = run_todo[ready]
            step_of = step_todo[ready]
            rows = rows_out[run_of, dependency[run_of, step_of]].copy()
        attempted += mutations * steps
        recipes[:, segment_start : segment_start + steps, :initial_length] = (
            rows_out
        )
        lengths[segment_start : segment_start + steps] = initial_length

    while n < target:
        if m / n < phi and rem:
            # Pool growth, all runs at once: one buffered variate per
            # run selects its remaining-universe victim; the swap-move
            # and the per-category append mirror ArrayEvolutionState.
            u = streams.one_each()
            drawn = (u * rem).astype(np.intp)
            position = remaining[row_index, drawn]
            last = remaining[:, rem - 1].copy()
            remaining[row_index, drawn] = last
            rem -= 1
            pool[:, m] = position
            code = category_codes[position]
            members[row_index, code, counts[row_index, code]] = position
            counts[row_index, code] += 1
            m += 1
            ingredients_added += 1
            if history is not None:
                history.append((m, n))
            step += 1
            if checkpointer is not None:
                checkpointer.after_step(step, _capture)
            continue
        if null_mode:
            # NM: the vectorized engine already batches each frozen-pool
            # stretch within a run; here the same stretch is drawn for
            # all runs at once and only within-row collisions fall back
            # to per-row Floyd repair on that run's own stream.
            if rem:
                cap = int(m / phi)
                while m / (cap + 1) >= phi:
                    cap += 1
                while cap > n and m / cap < phi:
                    cap -= 1
                steps = min(max(cap - n + 1, 1), target - n)
            else:
                steps = target - n
            count = m if null_from_pool else universe_size
            size = recipe_size if recipe_size <= count else count
            first_upper = count - size
            index_matrix = (
                (streams.take_each(1, steps * size)[:, 0, :] * count)
                .astype(np.intp)
                .reshape(runs, steps, size)
            )
            if size > 1:
                ordered = np.sort(index_matrix, axis=2)
                collided_run, collided_step = np.nonzero(
                    (ordered[:, :, 1:] == ordered[:, :, :-1]).any(axis=2)
                )
                if collided_run.size:
                    # Gather each run's repair draws in one buffered
                    # walk (np.nonzero is run-major with steps
                    # ascending — the exact order a per-row loop would
                    # consume each stream in), then run Floyd's
                    # sampling across all collided rows at once.
                    repaired = collided_run.size
                    repairs = np.empty((repaired, size), dtype=np.float64)
                    rows_with, takes_per = np.unique(
                        collided_run, return_counts=True
                    )
                    start = 0
                    for row, takes in zip(
                        rows_with.tolist(), takes_per.tolist()
                    ):
                        repairs[start : start + takes] = streams.take_run(
                            row, takes, size
                        )
                        start += takes
                    chosen = np.empty((repaired, size), dtype=np.intp)
                    for d in range(size):
                        upper = first_upper + d
                        index = (repairs[:, d] * (upper + 1)).astype(
                            np.intp
                        )
                        if d:
                            dup = (chosen[:, :d] == index[:, None]).any(
                                axis=1
                            )
                            index[dup] = upper
                        chosen[:, d] = index
                    index_matrix[collided_run, collided_step] = chosen
            if null_from_pool:
                rows = pool[row_index[:, None, None], index_matrix]
            else:
                rows = index_matrix
            recipes[:, n : n + steps, :size] = rows
            lengths[n : n + steps] = size
            if history is not None:
                history.extend(
                    (m, past) for past in range(n + 1, n + steps + 1)
                )
            n += steps
            step += 1
            if checkpointer is not None:
                checkpointer.after_step(step, _capture)
            continue
        # Copy-mutate segment: count the consecutive recipe steps the
        # sequential loop would take before its next growth step (the
        # exact float comparisons of the loop predicate), then resolve
        # them in memory-bounded chunks.
        steps = 1
        while n + steps < target and not (m / (n + steps) < phi and rem):
            steps += 1
        # History is extended per chunk (not once for the whole segment)
        # so that a snapshot taken at a chunk boundary carries history
        # only for recipes that exist; the final contents are identical.
        while steps:
            chunk = min(steps, _MAX_SEGMENT)
            copy_mutate_segment(n, chunk)
            if history is not None:
                history.extend(
                    (m, past) for past in range(n + 1, n + chunk + 1)
                )
            n += chunk
            steps -= chunk
            step += 1
            if checkpointer is not None:
                checkpointer.after_step(step, _capture)

    # ------------------------------------------------------------------
    # Per-run result assembly.  Transactions are lazy views over the
    # shared position matrix — materializing 100 paper-scale runs of
    # frozensets up front costs far more than the simulation did (see
    # BatchedTransactions) — mapped through one canonical Python int
    # per universe entry so materialized recipes share id objects.
    # ------------------------------------------------------------------
    ids_list = [int(ingredient) for ingredient in spec.ingredient_ids]
    uniform_rows = bool(target == 0 or (lengths == row_width).all())
    lengths_list = None if uniform_rows else lengths.tolist()
    shared_history = tuple(history) if history is not None else None
    results: list["EvolutionRun"] = []
    for row in range(runs):
        transactions = BatchedTransactions(
            recipes[row], lengths_list, ids_list
        )
        trace = EvolutionTraceCounters(
            recipes_added=target - n0,
            ingredients_added=ingredients_added,
            mutations_attempted=attempted,
            mutations_accepted=int(accepted[row]),
            mutations_rejected_fitness=int(rejected_fitness[row]),
            mutations_rejected_duplicate=int(rejected_duplicate[row]),
            mutations_skipped_no_candidate=int(skipped_no_candidate[row]),
        )
        results.append(
            EvolutionRun(
                model_name=model.name,
                region_code=spec.region_code,
                transactions=transactions,
                final_pool_size=m,
                initial_recipes=n0,
                trace=trace,
                history=shared_history,
            )
        )
    return results
