"""The three copy-mutate variants of Sec. V.

* **CM-R** (Copy-Mutate Random): the replacement ``j`` is drawn
  uniformly from the ingredient pool — the vanilla Algorithm 1.
* **CM-C** (Copy-Mutate Category only): ``j`` is drawn from the pool
  ingredients sharing the victim's category.
* **CM-M** (Copy-Mutate Mixture): half the time category-restricted,
  otherwise pool-wide.

Sec. VI uses M=4 mutations for CM-R and M=6 for CM-C and CM-M, reflected
in each variant's default parameters.
"""

from __future__ import annotations

import numpy as np

from repro.config import PAPER
from repro.models.base import CopyMutateBase
from repro.models.params import ModelParams
from repro.models.state import EvolutionState

__all__ = ["CopyMutateRandom", "CopyMutateCategory", "CopyMutateMixture"]


class CopyMutateRandom(CopyMutateBase):
    """CM-R: unrestricted replacement choice."""

    name = "CM-R"
    vectorized_kind = "pool"

    @classmethod
    def default_params(cls) -> ModelParams:
        return ModelParams(mutations=PAPER.model_mutations_cm_r)

    def _choose_replacement(
        self,
        state: EvolutionState,
        victim: int,
        rng: np.random.Generator,
    ) -> int | None:
        return state.random_pool_ingredient()


class CopyMutateCategory(CopyMutateBase):
    """CM-C: replacement restricted to the victim's category."""

    name = "CM-C"
    vectorized_kind = "category"

    @classmethod
    def default_params(cls) -> ModelParams:
        return ModelParams(mutations=PAPER.model_mutations_cm_c)

    def _choose_replacement(
        self,
        state: EvolutionState,
        victim: int,
        rng: np.random.Generator,
    ) -> int | None:
        candidate = state.random_pool_ingredient_of_category(
            state.category_of(victim)
        )
        if candidate is None and self.params.category_fallback == "random":
            return state.random_pool_ingredient()
        return candidate


class CopyMutateMixture(CopyMutateBase):
    """CM-M: category-restricted exactly half the time."""

    name = "CM-M"
    vectorized_kind = "mixture"

    @classmethod
    def default_params(cls) -> ModelParams:
        return ModelParams(mutations=PAPER.model_mutations_cm_m)

    def _choose_replacement(
        self,
        state: EvolutionState,
        victim: int,
        rng: np.random.Generator,
    ) -> int | None:
        if rng.random() < self.params.mixture_category_probability:
            candidate = state.random_pool_ingredient_of_category(
                state.category_of(victim)
            )
            if candidate is None and self.params.category_fallback == "random":
                return state.random_pool_ingredient()
            return candidate
        return state.random_pool_ingredient()
