"""Fitness assignment strategies (Algorithm 1, Step 1).

The paper samples every ingredient's fitness from Uniform(0, 1) and
interprets it as "worthiness ... based on intrinsic properties such as
cost, availability, and nutritional content".  :class:`UniformFitness` is
that default; :class:`ScoredFitness` grounds the interpretation by
letting callers supply explicit scores (the dietary-intervention example
uses it with nutrition scores), and :class:`RankBiasedFitness` supports
ablations where fitness correlates with empirical popularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence

import numpy as np

from repro.errors import ModelError

__all__ = [
    "FitnessStrategy",
    "UniformFitness",
    "ScoredFitness",
    "RankBiasedFitness",
]


class FitnessStrategy(Protocol):
    """Assigns a fitness value to every ingredient of a cuisine."""

    def assign(
        self, ingredient_ids: Sequence[int], rng: np.random.Generator
    ) -> np.ndarray:
        """Fitness array aligned with ``ingredient_ids``."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class UniformFitness:
    """The paper's Step 1: fitness ~ Uniform(0, 1), i.i.d."""

    def assign(
        self, ingredient_ids: Sequence[int], rng: np.random.Generator
    ) -> np.ndarray:
        return rng.uniform(0.0, 1.0, size=len(ingredient_ids))


@dataclass(frozen=True)
class ScoredFitness:
    """Fitness from explicit per-ingredient scores.

    Scores are min-max normalized to [0, 1]; unknown ingredients get
    ``default``.  Optional ``jitter`` adds uniform noise to break ties
    (mutations compare fitness strictly, so exact ties never replace).

    Attributes:
        scores: ingredient id -> raw score.
        default: Score for ingredients absent from ``scores``.
        jitter: Half-width of the uniform tie-breaking noise.
    """

    scores: Mapping[int, float]
    default: float = 0.5
    jitter: float = 0.0

    def assign(
        self, ingredient_ids: Sequence[int], rng: np.random.Generator
    ) -> np.ndarray:
        if self.jitter < 0:
            raise ModelError(f"jitter must be >= 0, got {self.jitter}")
        raw = np.array(
            [float(self.scores.get(i, self.default)) for i in ingredient_ids]
        )
        low, high = raw.min(), raw.max()
        if high > low:
            raw = (raw - low) / (high - low)
        else:
            raw = np.full_like(raw, 0.5)
        if self.jitter > 0:
            raw = raw + rng.uniform(-self.jitter, self.jitter, size=raw.size)
        return np.clip(raw, 0.0, 1.0)


@dataclass(frozen=True)
class RankBiasedFitness:
    """Fitness decreasing with a supplied popularity rank (ablation aid).

    Ranks are normalized by the largest provided rank, then
    ``fitness = (1 - rank/(max_rank + 1)) ** gamma`` plus uniform noise,
    so low ranks (popular ingredients) receive high fitness.  Ingredients
    absent from ``ranks`` get the worst rank.  With ``gamma=0`` the rank
    signal vanishes and only the noise term remains.
    """

    ranks: Mapping[int, int]
    gamma: float = 1.0
    noise: float = 0.1

    def assign(
        self, ingredient_ids: Sequence[int], rng: np.random.Generator
    ) -> np.ndarray:
        if self.gamma < 0 or self.noise < 0:
            raise ModelError("gamma and noise must be >= 0")
        max_rank = max(self.ranks.values(), default=0)
        scale = float(max_rank + 1)
        base = np.array(
            [
                (1.0 - self.ranks.get(i, max_rank) / scale) ** self.gamma
                for i in ingredient_ids
            ]
        )
        return np.clip(
            base + rng.uniform(0.0, self.noise, size=base.size), 0.0, 1.0
        )
