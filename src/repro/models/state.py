"""Mutable simulation state for Algorithm 1.

Tracks the ingredient universe ``I``, the growing pool ``I₀``, the
growing recipe pool ``R₀``, per-ingredient fitness, and the pool-ratio
bookkeeping (∂ = m/n vs φ).  The state exposes exactly the operations
the algorithm needs, each preserving the documented invariants (enforced
by the property tests):

* the pool is always a subset of the original universe;
* pool and remaining universe are disjoint and their union is constant;
* ``m`` and ``n`` always equal the actual container sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.lexicon.categories import Category
from repro.models.params import CuisineSpec

__all__ = ["EvolutionState", "EvolutionTraceCounters"]


@dataclass
class EvolutionTraceCounters:
    """Event counts accumulated during one run.

    Attributes:
        recipes_added: Copy-mutate (or null) recipe additions.
        ingredients_added: Pool growth events.
        mutations_attempted: Mutation attempts (g-loop iterations).
        mutations_accepted: Replacements actually applied.
        mutations_rejected_fitness: Rejected because fitness(j) <= fitness(i).
        mutations_rejected_duplicate: Rejected because j was already in r.
        mutations_skipped_no_candidate: CM-C attempts with no same-category
            candidate in the pool (under the "skip" fallback).
    """

    recipes_added: int = 0
    ingredients_added: int = 0
    mutations_attempted: int = 0
    mutations_accepted: int = 0
    mutations_rejected_fitness: int = 0
    mutations_rejected_duplicate: int = 0
    mutations_skipped_no_candidate: int = 0


class EvolutionState:
    """Live state of one Algorithm 1 run."""

    def __init__(
        self,
        spec: CuisineSpec,
        fitness: np.ndarray,
        rng: np.random.Generator,
        initial_pool_size: int,
        initial_recipes: int,
    ):
        if fitness.shape != (len(spec.ingredient_ids),):
            raise ModelError(
                f"fitness must align with the universe: {fitness.shape} vs "
                f"{len(spec.ingredient_ids)}"
            )
        m = min(initial_pool_size, len(spec.ingredient_ids))
        if m < 1:
            raise ModelError("initial pool must hold at least one ingredient")

        self.spec = spec
        self._rng = rng
        self._fitness = {
            ingredient_id: float(value)
            for ingredient_id, value in zip(spec.ingredient_ids, fitness)
        }
        self._category = {
            ingredient_id: category
            for ingredient_id, category in zip(spec.ingredient_ids, spec.categories)
        }

        # Step 2: I0 <- m random ingredients; I <- I - I0.
        universe = np.asarray(spec.ingredient_ids, dtype=np.int64)
        picked = rng.choice(universe.size, size=m, replace=False)
        mask = np.zeros(universe.size, dtype=bool)
        mask[picked] = True
        self._pool: list[int] = [int(i) for i in universe[mask]]
        self._pool_set: set[int] = set(self._pool)
        self._remaining: list[int] = [int(i) for i in universe[~mask]]
        self._pool_by_category: dict[Category, list[int]] = {}
        for ingredient_id in self._pool:
            self._pool_by_category.setdefault(
                self._category[ingredient_id], []
            ).append(ingredient_id)

        # R0 <- n recipes of s̄ distinct pool ingredients each.
        size = min(spec.recipe_size, len(self._pool))
        self.recipes: list[list[int]] = []
        for _ in range(initial_recipes):
            rows = rng.choice(len(self._pool), size=size, replace=False)
            self.recipes.append([self._pool[int(row)] for row in rows])

        self.trace = EvolutionTraceCounters()

    # ------------------------------------------------------------------
    # Bookkeeping accessors
    # ------------------------------------------------------------------

    @property
    def m(self) -> int:
        """Current ingredient pool size."""
        return len(self._pool)

    @property
    def n(self) -> int:
        """Current recipe pool size."""
        return len(self.recipes)

    @property
    def pool(self) -> tuple[int, ...]:
        return tuple(self._pool)

    @property
    def remaining_universe(self) -> tuple[int, ...]:
        return tuple(self._remaining)

    def pool_ratio(self) -> float:
        """∂ = m/n (Algorithm 1, line 8)."""
        return self.m / max(self.n, 1)

    def fitness_of(self, ingredient_id: int) -> float:
        try:
            return self._fitness[ingredient_id]
        except KeyError:
            raise ModelError(
                f"ingredient {ingredient_id} is not in this cuisine's universe"
            ) from None

    def category_of(self, ingredient_id: int) -> Category:
        try:
            return self._category[ingredient_id]
        except KeyError:
            raise ModelError(
                f"ingredient {ingredient_id} is not in this cuisine's universe"
            ) from None

    # ------------------------------------------------------------------
    # Algorithm steps
    # ------------------------------------------------------------------

    def can_grow_pool(self) -> bool:
        return bool(self._remaining)

    def grow_pool(self) -> int:
        """Lines 22-25: move a random universe ingredient into the pool."""
        if not self._remaining:
            raise ModelError("ingredient universe is exhausted")
        row = int(self._rng.integers(0, len(self._remaining)))
        # O(1) removal: swap with last, pop.
        ingredient_id = self._remaining[row]
        self._remaining[row] = self._remaining[-1]
        self._remaining.pop()
        self._pool.append(ingredient_id)
        self._pool_set.add(ingredient_id)
        self._pool_by_category.setdefault(
            self._category[ingredient_id], []
        ).append(ingredient_id)
        self.trace.ingredients_added += 1
        return ingredient_id

    def random_recipe_index(self) -> int:
        return int(self._rng.integers(0, len(self.recipes)))

    def random_pool_ingredient(self) -> int:
        """Uniform draw from the pool (CM-R's j)."""
        return self._pool[int(self._rng.integers(0, len(self._pool)))]

    def random_pool_ingredient_of_category(
        self, category: Category
    ) -> int | None:
        """Uniform draw from pool ∩ category (CM-C's j); None if empty."""
        members = self._pool_by_category.get(category)
        if not members:
            return None
        return members[int(self._rng.integers(0, len(members)))]

    def add_recipe(self, recipe: list[int]) -> None:
        """Line 19: append a mutated copy to the recipe pool."""
        if not recipe:
            raise ModelError("cannot add an empty recipe")
        self.recipes.append(recipe)
        self.trace.recipes_added += 1

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def transactions(self) -> list[frozenset[int]]:
        """Recipe pool as itemset transactions (mining input)."""
        return [frozenset(recipe) for recipe in self.recipes]
