"""Mutable simulation state for Algorithm 1, in two representations.

Both engines (DESIGN.md §5) track the ingredient universe ``I``, the
growing pool ``I₀``, the growing recipe pool ``R₀``, per-ingredient
fitness, and the pool-ratio bookkeeping (∂ = m/n vs φ):

* :class:`EvolutionState` — the **reference** representation.  Its public
  surface speaks ingredient *ids* (recipes are lists of ids, draws
  return ids) because the scalar loop and the extensions
  (:mod:`repro.models.extensions`) are written in id space.  Internally
  fitness and category live in dense position-indexed arrays — a single
  id→position index replaces the old per-quantity dicts — and
  per-category pool membership is a contiguous list per category code.
* :class:`ArrayEvolutionState` — the **vectorized** representation.
  Everything is a dense integer *position* (the index into
  ``spec.ingredient_ids``): fitness and category are arrays indexed by
  position, the pool/remaining partition is a pair of index lists with
  O(1) swap-moves, per-category pool membership is one contiguous,
  append-only index list per category (the pool never shrinks), and
  recipes hold positions until :meth:`~ArrayEvolutionState.transactions`
  maps them back to ids.  The vectorized engine
  (:mod:`repro.models.vectorized`) drives it with batched RNG draws.

Shared invariants (enforced by the property tests):

* the pool is always a subset of the original universe;
* pool and remaining universe are disjoint and their union is constant;
* ``m`` and ``n`` always equal the actual container sizes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.lexicon.categories import Category
from repro.models.params import CuisineSpec

__all__ = [
    "ArrayEvolutionState",
    "CATEGORY_CODES",
    "EvolutionState",
    "EvolutionTraceCounters",
]

#: Stable category → dense integer code mapping (enum declaration order).
CATEGORY_CODES: dict[Category, int] = {
    category: code for code, category in enumerate(Category)
}

#: Dense code → category, inverse of :data:`CATEGORY_CODES`.
CATEGORIES_BY_CODE: tuple[Category, ...] = tuple(Category)


@dataclass
class EvolutionTraceCounters:
    """Event counts accumulated during one run.

    Attributes:
        recipes_added: Copy-mutate (or null) recipe additions.
        ingredients_added: Pool growth events.
        mutations_attempted: Mutation attempts (g-loop iterations).
        mutations_accepted: Replacements actually applied.
        mutations_rejected_fitness: Rejected because fitness(j) <= fitness(i).
        mutations_rejected_duplicate: Rejected because j was already in r.
        mutations_skipped_no_candidate: CM-C attempts with no same-category
            candidate in the pool (under the "skip" fallback).
        recipes_borrowed: Recipe steps whose mother came from another
            island (DESIGN.md §10); always 0 for single-population runs.
    """

    recipes_added: int = 0
    ingredients_added: int = 0
    mutations_attempted: int = 0
    mutations_accepted: int = 0
    mutations_rejected_fitness: int = 0
    mutations_rejected_duplicate: int = 0
    mutations_skipped_no_candidate: int = 0
    recipes_borrowed: int = 0


def _position_index(ingredient_ids: tuple[int, ...]) -> dict[int, int]:
    """The id → dense-position index shared by both representations."""
    return {
        int(ingredient_id): position
        for position, ingredient_id in enumerate(ingredient_ids)
    }


class EvolutionState:
    """Live state of one reference-engine Algorithm 1 run (id space)."""

    def __init__(
        self,
        spec: CuisineSpec,
        fitness: np.ndarray,
        rng: np.random.Generator,
        initial_pool_size: int,
        initial_recipes: int,
    ):
        if fitness.shape != (len(spec.ingredient_ids),):
            raise ModelError(
                f"fitness must align with the universe: {fitness.shape} vs "
                f"{len(spec.ingredient_ids)}"
            )
        m = min(initial_pool_size, len(spec.ingredient_ids))
        if m < 1:
            raise ModelError("initial pool must hold at least one ingredient")

        self.spec = spec
        self._rng = rng
        # Dense position-indexed value arrays; one id→position index
        # replaces the per-quantity dicts the state used to carry.
        self._position_of = _position_index(spec.ingredient_ids)
        self._fitness_list: list[float] = (
            np.asarray(fitness, dtype=np.float64).tolist()
        )
        self._category_codes: list[int] = [
            CATEGORY_CODES[category] for category in spec.categories
        ]

        # Step 2: I0 <- m random ingredients; I <- I - I0.
        universe = np.asarray(spec.ingredient_ids, dtype=np.int64)
        picked = rng.choice(universe.size, size=m, replace=False)
        mask = np.zeros(universe.size, dtype=bool)
        mask[picked] = True
        self._pool: list[int] = [int(i) for i in universe[mask]]
        self._pool_set: set[int] = set(self._pool)
        self._remaining: list[int] = [int(i) for i in universe[~mask]]
        # Contiguous pool-membership list per category code (append-only:
        # the pool never shrinks).
        self._pool_by_code: list[list[int]] = [
            [] for _ in CATEGORIES_BY_CODE
        ]
        for ingredient_id in self._pool:
            code = self._category_codes[self._position_of[ingredient_id]]
            self._pool_by_code[code].append(ingredient_id)

        # R0 <- n recipes of s̄ distinct pool ingredients each.
        size = min(spec.recipe_size, len(self._pool))
        self.recipes: list[list[int]] = []
        for _ in range(initial_recipes):
            rows = rng.choice(len(self._pool), size=size, replace=False)
            self.recipes.append([self._pool[int(row)] for row in rows])

        self.trace = EvolutionTraceCounters()

    # ------------------------------------------------------------------
    # Bookkeeping accessors
    # ------------------------------------------------------------------

    @property
    def m(self) -> int:
        """Current ingredient pool size."""
        return len(self._pool)

    @property
    def n(self) -> int:
        """Current recipe pool size."""
        return len(self.recipes)

    @property
    def pool(self) -> tuple[int, ...]:
        return tuple(self._pool)

    @property
    def remaining_universe(self) -> tuple[int, ...]:
        return tuple(self._remaining)

    def pool_ratio(self) -> float:
        """∂ = m/n (Algorithm 1, line 8)."""
        return self.m / max(self.n, 1)

    def fitness_of(self, ingredient_id: int) -> float:
        try:
            return self._fitness_list[self._position_of[ingredient_id]]
        except KeyError:
            raise ModelError(
                f"ingredient {ingredient_id} is not in this cuisine's universe"
            ) from None

    def category_of(self, ingredient_id: int) -> Category:
        try:
            code = self._category_codes[self._position_of[ingredient_id]]
        except KeyError:
            raise ModelError(
                f"ingredient {ingredient_id} is not in this cuisine's universe"
            ) from None
        return CATEGORIES_BY_CODE[code]

    # ------------------------------------------------------------------
    # Algorithm steps
    # ------------------------------------------------------------------

    def in_universe(self, ingredient_id: int) -> bool:
        """Whether the ingredient belongs to this cuisine's universe."""
        return ingredient_id in self._position_of

    def in_pool(self, ingredient_id: int) -> bool:
        """Whether the ingredient is currently in the pool ``I₀``."""
        return ingredient_id in self._pool_set

    def can_grow_pool(self) -> bool:
        return bool(self._remaining)

    def grow_pool(self) -> int:
        """Lines 22-25: move a random universe ingredient into the pool."""
        if not self._remaining:
            raise ModelError("ingredient universe is exhausted")
        row = int(self._rng.integers(0, len(self._remaining)))
        # O(1) removal: swap with last, pop.
        ingredient_id = self._remaining[row]
        self._remaining[row] = self._remaining[-1]
        self._remaining.pop()
        self._pool.append(ingredient_id)
        self._pool_set.add(ingredient_id)
        code = self._category_codes[self._position_of[ingredient_id]]
        self._pool_by_code[code].append(ingredient_id)
        self.trace.ingredients_added += 1
        return ingredient_id

    def adopt_ingredient(self, ingredient_id: int) -> None:
        """Move a *specific* remaining ingredient into the pool.

        The directed counterpart of :meth:`grow_pool`, used by the
        island engine (DESIGN.md §10) when a borrowed recipe carries an
        ingredient this cuisine knows but has not pooled yet.  Counted
        in ``trace.ingredients_added`` so the m/n invariant Algorithm 1
        enforces (∂ vs φ) keeps holding under migration.
        """
        if ingredient_id in self._pool_set:
            raise ModelError(
                f"ingredient {ingredient_id} is already in the pool"
            )
        if ingredient_id not in self._position_of:
            raise ModelError(
                f"ingredient {ingredient_id} is not in this cuisine's universe"
            )
        row = self._remaining.index(ingredient_id)
        self._remaining[row] = self._remaining[-1]
        self._remaining.pop()
        self._pool.append(ingredient_id)
        self._pool_set.add(ingredient_id)
        code = self._category_codes[self._position_of[ingredient_id]]
        self._pool_by_code[code].append(ingredient_id)
        self.trace.ingredients_added += 1

    def random_recipe_index(self) -> int:
        return int(self._rng.integers(0, len(self.recipes)))

    def random_pool_ingredient(self) -> int:
        """Uniform draw from the pool (CM-R's j)."""
        return self._pool[int(self._rng.integers(0, len(self._pool)))]

    def random_pool_ingredient_of_category(
        self, category: Category
    ) -> int | None:
        """Uniform draw from pool ∩ category (CM-C's j); None if empty."""
        members = self._pool_by_code[CATEGORY_CODES[category]]
        if not members:
            return None
        return members[int(self._rng.integers(0, len(members)))]

    def add_recipe(self, recipe: list[int]) -> None:
        """Line 19: append a mutated copy to the recipe pool."""
        if not recipe:
            raise ModelError("cannot add an empty recipe")
        self.recipes.append(recipe)
        self.trace.recipes_added += 1

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def transactions(self) -> list[frozenset[int]]:
        """Recipe pool as itemset transactions (mining input)."""
        return [frozenset(recipe) for recipe in self.recipes]


class ArrayEvolutionState:
    """Dense position-indexed state for the vectorized engine.

    All quantities are integer *positions* into ``spec.ingredient_ids``;
    ids only reappear when :meth:`transactions` converts the finished
    recipe pool.  Containers are kept as plain Python lists of machine
    ints — the vectorized engine batches its RNG draws into numpy calls
    but applies them through scalar bookkeeping, and list indexing beats
    per-element ndarray access there.

    Args:
        spec: Cuisine inputs.
        fitness: Fitness per position (aligned with
            ``spec.ingredient_ids``).
        rng: Generator used for the one-time initialization draws (the
            main loop consumes a block-buffered uniform stream instead;
            see :class:`repro.models.vectorized.UniformBuffer`).
        initial_pool_size: ``m`` before capping at the universe size.
        initial_recipes: ``n₀``.
    """

    __slots__ = (
        "spec",
        "fitness",
        "category_codes",
        "pool",
        "remaining",
        "pool_by_code",
        "recipes",
        "trace",
    )

    def __init__(
        self,
        spec: CuisineSpec,
        fitness: np.ndarray,
        rng: np.random.Generator,
        initial_pool_size: int,
        initial_recipes: int,
    ):
        if fitness.shape != (len(spec.ingredient_ids),):
            raise ModelError(
                f"fitness must align with the universe: {fitness.shape} vs "
                f"{len(spec.ingredient_ids)}"
            )
        universe_size = len(spec.ingredient_ids)
        m = min(initial_pool_size, universe_size)
        if m < 1:
            raise ModelError("initial pool must hold at least one ingredient")

        self.spec = spec
        #: Fitness by position, as Python floats (hot-loop lookups).
        self.fitness: list[float] = (
            np.asarray(fitness, dtype=np.float64).tolist()
        )
        #: Category code by position (see :data:`CATEGORY_CODES`).
        self.category_codes: list[int] = [
            CATEGORY_CODES[category] for category in spec.categories
        ]

        # Step 2: I0 <- m random positions; I <- I - I0.  Same draw shape
        # as the reference state (one `choice` without replacement).
        picked = rng.choice(universe_size, size=m, replace=False)
        mask = np.zeros(universe_size, dtype=bool)
        mask[picked] = True
        #: Pool positions, in insertion order (append-only).
        self.pool: list[int] = np.nonzero(mask)[0].tolist()
        #: Remaining universe positions; shrinks by O(1) swap-moves.
        self.remaining: list[int] = np.nonzero(~mask)[0].tolist()
        #: Contiguous pool positions per category code (append-only).
        self.pool_by_code: list[list[int]] = [[] for _ in CATEGORIES_BY_CODE]
        category_codes = self.category_codes
        for position in self.pool:
            self.pool_by_code[category_codes[position]].append(position)

        # R0 <- n recipes of s̄ distinct pool positions each.
        size = min(spec.recipe_size, len(self.pool))
        pool = self.pool
        self.recipes: list[list[int]] = [
            [pool[int(row)] for row in rng.choice(len(pool), size=size,
                                                  replace=False)]
            for _ in range(initial_recipes)
        ]
        self.trace = EvolutionTraceCounters()

    @property
    def m(self) -> int:
        """Current ingredient pool size."""
        return len(self.pool)

    @property
    def n(self) -> int:
        """Current recipe pool size."""
        return len(self.recipes)

    def can_grow_pool(self) -> bool:
        """Whether the remaining universe is non-empty."""
        return bool(self.remaining)

    def grow_pool(self, u: float) -> int:
        """Move the ``⌊u·|remaining|⌋``-th remaining position into the pool.

        ``u`` is a uniform [0, 1) variate from the engine's buffered
        stream; the swap-move keeps the remaining list contiguous in
        O(1).
        """
        remaining = self.remaining
        if not remaining:
            raise ModelError("ingredient universe is exhausted")
        row = int(u * len(remaining))
        position = remaining[row]
        remaining[row] = remaining[-1]
        remaining.pop()
        self.pool.append(position)
        self.pool_by_code[self.category_codes[position]].append(position)
        self.trace.ingredients_added += 1
        return position

    def transactions(self) -> list[frozenset[int]]:
        """Recipe pool as id-space itemset transactions (mining input)."""
        id_of = list(self.spec.ingredient_ids).__getitem__
        return [
            frozenset(map(id_of, recipe)) for recipe in self.recipes
        ]

    # ------------------------------------------------------------------
    # Checkpointing (DESIGN.md §9)
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """A picklable deep snapshot of the mutable state.

        Everything :meth:`restore` needs that is not derivable from the
        spec: the containers are copied (the engine keeps mutating the
        originals after the snapshot), fitness is immutable-by-contract
        but cheap enough to copy anyway, and the trace counters travel
        as a plain dict.  ``category_codes`` is deliberately absent —
        it is a pure function of the spec and is recomputed on restore.
        """
        return {
            "fitness": list(self.fitness),
            "pool": list(self.pool),
            "remaining": list(self.remaining),
            "pool_by_code": [list(members) for members in self.pool_by_code],
            "recipes": [list(recipe) for recipe in self.recipes],
            "trace": dataclasses.asdict(self.trace),
        }

    @classmethod
    def restore(cls, spec: CuisineSpec, payload: dict) -> "ArrayEvolutionState":
        """Rebuild a state from :meth:`export_state` output.

        Bypasses ``__init__`` entirely — the constructor consumes RNG
        draws (the pool/recipe ``choice`` sequence), and a resumed run
        must consume *no* draws the uninterrupted run would not.
        """
        state = object.__new__(cls)
        state.spec = spec
        state.fitness = list(payload["fitness"])
        state.category_codes = [
            CATEGORY_CODES[category] for category in spec.categories
        ]
        state.pool = list(payload["pool"])
        state.remaining = list(payload["remaining"])
        state.pool_by_code = [
            list(members) for members in payload["pool_by_code"]
        ]
        state.recipes = [list(recipe) for recipe in payload["recipes"]]
        state.trace = EvolutionTraceCounters(**payload["trace"])
        return state
