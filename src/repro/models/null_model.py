"""The Null Model (Sec. V control).

"No mutations — a new recipe is created at each iteration by randomly
sampling s̄ ingredients from the ingredient pool.  All the other steps
remain as it is."  The pool bookkeeping (∂ vs φ growth) is therefore kept
identical to the copy-mutate family; only the recipe step differs.

The paper's sentence cites the symbol ``I`` (the full ingredient list)
while calling it "the ingredient pool"; we default to sampling from the
growing pool ``I₀`` (the controlled comparison) and expose
``sample_from="universe"`` for the literal reading — the ``fig4``
conclusions hold under both (see the ablation bench).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.models.base import CulinaryEvolutionModel
from repro.models.fitness import FitnessStrategy
from repro.models.params import ModelParams
from repro.models.state import EvolutionState

__all__ = ["NullModel"]


class NullModel(CulinaryEvolutionModel):
    """NM: fresh random recipes, no copying, no mutation.

    Args:
        params: Shared model parameters (mutation count is ignored).
        fitness: Ignored by the recipe step (kept for interface parity —
            fitness plays no role without mutations).
        sample_from: ``"pool"`` (default) draws recipes from the growing
            ingredient pool; ``"universe"`` draws from the full cuisine
            ingredient list.
        engine: Convenience override for ``params.engine``.
    """

    name = "NM"
    vectorized_kind = "null"

    def __init__(
        self,
        params: ModelParams | None = None,
        fitness: FitnessStrategy | None = None,
        sample_from: str = "pool",
        engine: str | None = None,
    ):
        super().__init__(params=params, fitness=fitness, engine=engine)
        if sample_from not in ("pool", "universe"):
            raise ModelError(
                f"sample_from must be 'pool' or 'universe', got {sample_from!r}"
            )
        self.sample_from = sample_from

    def _recipe_step(
        self, state: EvolutionState, rng: np.random.Generator
    ) -> None:
        if self.sample_from == "pool":
            candidates = state.pool
        else:
            candidates = tuple(state.spec.ingredient_ids)
        size = min(state.spec.recipe_size, len(candidates))
        rows = rng.choice(len(candidates), size=size, replace=False)
        state.add_recipe([candidates[int(row)] for row in rows])
