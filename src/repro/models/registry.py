"""Model registry: paper names -> model factories.

The four Sec. V models register here; extensions add themselves on
import.  Experiments and the CLI look models up by their paper names
("CM-R", "CM-C", "CM-M", "NM").
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ModelError
from repro.models.base import CulinaryEvolutionModel
from repro.models.copy_mutate import (
    CopyMutateCategory,
    CopyMutateMixture,
    CopyMutateRandom,
)
from repro.models.null_model import NullModel

__all__ = [
    "PAPER_MODELS",
    "available_models",
    "create_model",
    "register_model",
]

ModelFactory = Callable[[], CulinaryEvolutionModel]

_REGISTRY: dict[str, ModelFactory] = {
    CopyMutateRandom.name: CopyMutateRandom,
    CopyMutateCategory.name: CopyMutateCategory,
    CopyMutateMixture.name: CopyMutateMixture,
    NullModel.name: NullModel,
}

#: The four models of Sec. V in the paper's presentation order.
PAPER_MODELS: tuple[str, ...] = ("CM-R", "CM-C", "CM-M", "NM")


def available_models() -> tuple[str, ...]:
    """All registered model names, sorted."""
    return tuple(sorted(_REGISTRY))


def create_model(name: str, **kwargs) -> CulinaryEvolutionModel:
    """Instantiate a registered model with its paper defaults.

    Args:
        name: Registry name (case-sensitive, e.g. ``"CM-R"``).
        **kwargs: Forwarded to the model constructor (``params=``,
            ``fitness=``, ...).

    Raises:
        ModelError: If the name is not registered.
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ModelError(
            f"unknown model {name!r}; available: {available_models()}"
        )
    return factory(**kwargs)


def register_model(name: str, factory: ModelFactory) -> None:
    """Register a new model (used by extensions).

    Raises:
        ModelError: If the name is already taken by a different factory.
    """
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not factory:
        raise ModelError(f"model name {name!r} is already registered")
    _REGISTRY[name] = factory
