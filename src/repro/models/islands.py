"""Island-model migration engine (DESIGN.md §10).

Sec. VII names horizontal (cross-region) transmission as the open
modeling frontier; Kinouchi et al.'s *The Nonequilibrium Nature of
Culinary Evolution* (PAPERS.md) supplies the population-dynamics frame.
This module is the first-class multi-population engine: ``N`` cuisines
evolve concurrently under any copy-mutate model, coupled by a
:class:`MigrationTopology` — a directed graph of ``donor → borrower``
edges with per-edge migration rates.  At each recipe step the borrower
draws one uniform against its cumulative inbound rates; on a hit the
mother recipe is *borrowed* from that donor (deduplicated, imported
through the borrower's pool accounting, refilled from the local pool)
instead of copied from the borrower's own recipe pool, then mutated
through the inner model's supported seam
(:meth:`~repro.models.base.CopyMutateBase.mutate_recipe`).

Determinism follows the §5 runtime contract, extended per island:

* every island derives a ``(dynamics, migration)`` seed-stream pair
  from ``(master_seed, region_code)`` alone
  (:func:`island_seed_streams`), so adding or removing an island never
  perturbs the streams of the others;
* all migration decisions (the borrow coin, donor recipe choice, pool
  refills) consume only the *migration* stream, so an island with zero
  inbound rate replays its dynamics stream exactly like an isolated
  reference-engine run — bit-identical transactions, pool, trace and
  history;
* islands advance in round-robin spec order, one ∂-vs-φ step per
  active island per round, so the interleaving is deterministic and
  disconnected islands cannot observe each other.

:class:`IslandMemberModel` adapts one island into a standard
dispatchable model: its result is a pure function of
``(simulation, member, seed)``, cached per island in the
:class:`~repro.runtime.cache.RunCache` under the versioned
:data:`ISLANDS_STREAM_VERSION` contract, and
:func:`run_island_ensemble` fans whole archipelago ensembles out
through :func:`~repro.runtime.runner.dispatch_requests` (thread /
process / distributed backends), where consecutive same-seed members
regroup into single archipelago executions.

The legacy
:class:`~repro.models.extensions.horizontal.HorizontalExchangeSimulation`
is a thin compat wrapper over a full-mesh topology.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ModelError, ParameterError
from repro.models.base import CopyMutateBase, CulinaryEvolutionModel, EvolutionRun
from repro.models.params import CuisineSpec
from repro.models.state import EvolutionState
from repro.rng import SeedLike, derive_seed, ensure_rng, rng_from_seed, spawn_seeds

__all__ = [
    "ISLANDS_STREAM_VERSION",
    "IslandEnsembleResult",
    "IslandMemberModel",
    "IslandOutcome",
    "IslandSimulation",
    "MigrationEdge",
    "MigrationTopology",
    "island_seed_streams",
    "run_island_ensemble",
]

#: RNG-stream contract version of the island engine: the per-island
#: ``(dynamics, migration)`` stream derivation of
#: :func:`island_seed_streams` plus the draw order of the archipelago
#: loop.  Part of every member run's cache key; bump on any change to
#: either.
ISLANDS_STREAM_VERSION = 1

#: Supported policies for borrowed ingredients the borrower knows but
#: has not pooled yet: ``"adopt"`` moves them into the pool through
#: :meth:`~repro.models.state.EvolutionState.adopt_ingredient` (counted
#: in ``trace.ingredients_added``); ``"filter"`` drops them from the
#: mother like truly foreign ingredients.
IMPORT_POLICIES = ("adopt", "filter")


def island_seed_streams(master_seed: int, region_code: str) -> tuple[int, int]:
    """The ``(dynamics_seed, migration_seed)`` pair for one island.

    Derived from ``(master_seed, region_code)`` *only* — never from the
    archipelago's composition — via a stable SHA-256 mix feeding
    :func:`repro.rng.spawn_seeds`, so adding or removing other islands
    cannot perturb this island's streams.  Both halves reconstruct with
    :func:`repro.rng.rng_from_seed`.
    """
    payload = (
        f"islands/v{ISLANDS_STREAM_VERSION}/{int(master_seed)}/{region_code}"
    )
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    root = rng_from_seed(int.from_bytes(digest[:8], "big") >> 1)
    dynamics_seed, migration_seed = spawn_seeds(root, 2)
    return dynamics_seed, migration_seed


def _master_seed(seed: SeedLike) -> int:
    """Coerce any :data:`~repro.rng.SeedLike` into the integer master seed.

    Integers pass through untouched (the documented master-seed form);
    generators (and ``None``) contribute one :func:`derive_seed` draw.
    """
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    return derive_seed(ensure_rng(seed))


@dataclass(frozen=True)
class MigrationEdge:
    """One directed migration channel: ``borrower`` borrows from ``donor``.

    Attributes:
        donor: Region code recipes flow *from*.
        borrower: Region code recipes flow *to*.
        rate: Per-recipe-step borrow probability contributed by this
            edge, in ``[0, 1]``.
    """

    donor: str
    borrower: str
    rate: float

    def __post_init__(self) -> None:
        if self.donor == self.borrower:
            raise ParameterError(
                f"migration edge cannot be a self-loop: {self.donor!r}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ParameterError(
                f"migration rate must be in [0, 1], got {self.rate} "
                f"({self.donor} -> {self.borrower})"
            )


@dataclass(frozen=True)
class MigrationTopology:
    """A directed migration graph with per-edge rates (DESIGN.md §10).

    At each recipe step a borrower with inbound edges draws one uniform
    and matches it against the cumulative inbound rates in stable donor
    order — so an island's total borrow probability per recipe step is
    the *sum* of its inbound rates, which must not exceed 1.

    Construct via the factories (:meth:`ring`, :meth:`star`,
    :meth:`full_mesh`, :meth:`custom`, :meth:`isolated`) or directly
    from :class:`MigrationEdge` tuples; edges normalize into a stable
    sorted order, so equal topologies fingerprint equally regardless of
    construction order.
    """

    edges: tuple[MigrationEdge, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.edges, key=lambda e: (e.borrower, e.donor))
        )
        object.__setattr__(self, "edges", ordered)
        seen: set[tuple[str, str]] = set()
        inbound_totals: dict[str, float] = {}
        for edge in ordered:
            pair = (edge.donor, edge.borrower)
            if pair in seen:
                raise ParameterError(
                    f"duplicate migration edge {edge.donor} -> "
                    f"{edge.borrower}"
                )
            seen.add(pair)
            inbound_totals[edge.borrower] = (
                inbound_totals.get(edge.borrower, 0.0) + edge.rate
            )
        for code, total in inbound_totals.items():
            if total > 1.0 + 1e-12:
                raise ParameterError(
                    f"inbound migration rates for {code!r} sum to "
                    f"{total:.4f} > 1; a recipe step draws one uniform "
                    f"against the cumulative inbound rates"
                )

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    @classmethod
    def isolated(cls) -> "MigrationTopology":
        """No migration channels at all."""
        return cls(edges=())

    @classmethod
    def ring(
        cls,
        codes: Sequence[str],
        rate: float,
        bidirectional: bool = False,
    ) -> "MigrationTopology":
        """A cycle: each island borrows from its predecessor.

        ``codes[i]`` donates to ``codes[(i + 1) % len]``;
        ``bidirectional`` adds the reverse edges (deduplicated, so a
        two-island bidirectional ring is just the two directed edges).
        """
        if len(codes) < 2:
            raise ParameterError("a ring needs at least two islands")
        pairs: list[tuple[str, str]] = []
        for i, donor in enumerate(codes):
            pairs.append((donor, codes[(i + 1) % len(codes)]))
        if bidirectional:
            for donor, borrower in list(pairs):
                if (borrower, donor) not in pairs:
                    pairs.append((borrower, donor))
        return cls(edges=tuple(
            MigrationEdge(donor, borrower, rate) for donor, borrower in pairs
        ))

    @classmethod
    def star(
        cls, hub: str, leaves: Sequence[str], rate: float
    ) -> "MigrationTopology":
        """A hub exchanging both ways with every leaf at ``rate``.

        Leaves are not connected to each other; anything reaching one
        leaf from another must pass through the hub.
        """
        if not leaves:
            raise ParameterError("a star needs at least one leaf")
        edges: list[MigrationEdge] = []
        for leaf in leaves:
            edges.append(MigrationEdge(hub, leaf, rate))
            edges.append(MigrationEdge(leaf, hub, rate))
        return cls(edges=tuple(edges))

    @classmethod
    def full_mesh(cls, codes: Sequence[str], rate: float) -> "MigrationTopology":
        """Every ordered pair connected at the same per-edge ``rate``."""
        if len(codes) < 2:
            raise ParameterError("a mesh needs at least two islands")
        return cls(edges=tuple(
            MigrationEdge(donor, borrower, rate)
            for donor in codes
            for borrower in codes
            if donor != borrower
        ))

    @classmethod
    def custom(
        cls, edges: Iterable[tuple[str, str, float]]
    ) -> "MigrationTopology":
        """An arbitrary adjacency: ``(donor, borrower, rate)`` triples."""
        return cls(edges=tuple(
            MigrationEdge(donor, borrower, float(rate))
            for donor, borrower, rate in edges
        ))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def codes(self) -> frozenset[str]:
        """Every region code touched by an edge."""
        return frozenset(
            code for edge in self.edges for code in (edge.donor, edge.borrower)
        )

    def inbound(self, code: str) -> tuple[MigrationEdge, ...]:
        """Inbound edges of ``code``, in stable donor order.

        This order defines the cumulative-rate intervals the borrow
        uniform is matched against; it is part of the
        :data:`ISLANDS_STREAM_VERSION` contract.
        """
        return tuple(
            edge for edge in self.edges if edge.borrower == code
        )

    def restricted_to(self, codes: Iterable[str]) -> "MigrationTopology":
        """The sub-topology induced by ``codes`` (edges fully inside)."""
        kept = frozenset(codes)
        return MigrationTopology(edges=tuple(
            edge for edge in self.edges
            if edge.donor in kept and edge.borrower in kept
        ))


@dataclass(frozen=True)
class IslandOutcome:
    """Result of one whole-archipelago simulation.

    Attributes:
        runs: Per-island evolution runs, keyed by region code.
        borrow_events: Borrowed recipe steps per *borrower* code (every
            island present, zeros included); equals each run's
            ``trace.recipes_borrowed``.
        edge_borrows: Borrow counts per ``(donor, borrower)`` edge that
            fired at least once.
        pools: Final ingredient pool per island (insertion order) —
            every transaction of an island is a subset of its pool, the
            m/n invariant migration must preserve.
    """

    runs: dict[str, EvolutionRun]
    borrow_events: dict[str, int]
    edge_borrows: dict[tuple[str, str], int] = field(default_factory=dict)
    pools: dict[str, tuple[int, ...]] = field(default_factory=dict)


class _Island:
    """Live per-island state of one archipelago execution."""

    __slots__ = (
        "spec", "state", "dynamics", "migration", "inbound",
        "inbound_total", "initial_recipes", "history",
    )

    def __init__(
        self,
        spec: CuisineSpec,
        state: EvolutionState,
        dynamics: np.random.Generator,
        migration: np.random.Generator,
        inbound: tuple[MigrationEdge, ...],
        initial_recipes: int,
        record_history: bool,
    ):
        self.spec = spec
        self.state = state
        self.dynamics = dynamics
        self.migration = migration
        self.inbound = inbound
        self.inbound_total = sum(edge.rate for edge in inbound)
        self.initial_recipes = initial_recipes
        self.history: list[tuple[int, int]] | None = (
            [(state.m, state.n)] if record_history else None
        )


class IslandSimulation:
    """N cuisines co-evolving under a migration topology (DESIGN.md §10).

    Args:
        inner_model: A :class:`CopyMutateBase` instance whose dynamics
            (fitness, ∂-vs-φ alternation, mutation seam) every island
            shares.  Borrowed mothers are mutated through the model's
            public :meth:`~CopyMutateBase.mutate_recipe` seam; local
            steps run the model's own recipe step, so variant behavior
            (CM-C categories, CM-V insert/delete moves) is preserved.
        specs: One :class:`CuisineSpec` per island; distinct region
            codes required.  Spec order fixes the round-robin stepping
            order.
        topology: Migration graph; ``None`` means fully isolated.
            Every edge endpoint must name one of ``specs``.
        import_policy: How borrowed ingredients outside the borrower's
            *pool* but inside its *universe* are handled — see
            :data:`IMPORT_POLICIES`.  Ingredients outside the universe
            are always dropped.
    """

    def __init__(
        self,
        inner_model: CopyMutateBase,
        specs: Sequence[CuisineSpec],
        topology: MigrationTopology | None = None,
        import_policy: str = "adopt",
    ):
        if not isinstance(inner_model, CopyMutateBase):
            raise ModelError(
                "island migration requires a copy-mutate inner model"
            )
        specs = tuple(specs)
        if not specs:
            raise ModelError("an archipelago needs at least one island")
        codes = [spec.region_code for spec in specs]
        if len(set(codes)) != len(codes):
            raise ModelError("cuisine specs must have distinct region codes")
        topology = topology if topology is not None else MigrationTopology()
        unknown = topology.codes() - set(codes)
        if unknown:
            raise ModelError(
                f"topology names islands without specs: {sorted(unknown)}"
            )
        if import_policy not in IMPORT_POLICIES:
            raise ParameterError(
                f"import_policy must be one of {IMPORT_POLICIES}, "
                f"got {import_policy!r}"
            )
        self.inner_model = inner_model
        self.specs = specs
        self.topology = topology
        self.import_policy = import_policy

    @property
    def name(self) -> str:
        """Model name stamped on every member run."""
        return f"ISL({self.inner_model.name})"

    @property
    def codes(self) -> tuple[str, ...]:
        return tuple(spec.region_code for spec in self.specs)

    def member(self, member: int | str) -> "IslandMemberModel":
        """One island as a dispatchable :class:`IslandMemberModel`."""
        if isinstance(member, str):
            try:
                member = self.codes.index(member)
            except ValueError:
                raise ModelError(
                    f"no island with region code {member!r}"
                ) from None
        if not 0 <= member < len(self.specs):
            raise ModelError(
                f"member index {member} out of range for "
                f"{len(self.specs)} islands"
            )
        return IslandMemberModel(self, member)

    def members(self) -> tuple["IslandMemberModel", ...]:
        return tuple(self.member(i) for i in range(len(self.specs)))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self, seed: SeedLike = None, record_history: bool = False
    ) -> IslandOutcome:
        """Co-evolve every island to its target recipe-pool size.

        Args:
            seed: Integer master seed (the documented form — per-island
                streams derive from it via :func:`island_seed_streams`),
                a generator (one :func:`~repro.rng.derive_seed` draw
                fixes the master), or ``None`` for a fresh random
                master.
            record_history: Record each island's ``(m, n)`` trajectory.
        """
        master = _master_seed(seed)
        model = self.inner_model
        islands: dict[str, _Island] = {}
        for spec in self.specs:
            dynamics_seed, migration_seed = island_seed_streams(
                master, spec.region_code
            )
            dynamics = rng_from_seed(dynamics_seed)
            fitness = np.asarray(
                model.fitness.assign(spec.ingredient_ids, dynamics),
                dtype=np.float64,
            )
            n0 = min(
                model.params.derive_initial_recipes(spec.phi), spec.n_recipes
            )
            state = EvolutionState(
                spec=spec,
                fitness=fitness,
                rng=dynamics,
                initial_pool_size=model.params.initial_pool_size,
                initial_recipes=n0,
            )
            islands[spec.region_code] = _Island(
                spec=spec,
                state=state,
                dynamics=dynamics,
                migration=rng_from_seed(migration_seed),
                inbound=self.topology.inbound(spec.region_code),
                initial_recipes=n0,
                record_history=record_history,
            )

        edge_borrows: dict[tuple[str, str], int] = {}
        active = [
            islands[code] for code in self.codes
            if islands[code].state.n < islands[code].spec.n_recipes
        ]
        while active:
            still_active: list[_Island] = []
            for island in active:
                state = island.state
                if (
                    state.pool_ratio() >= island.spec.phi
                    or not state.can_grow_pool()
                ):
                    self._recipe_step(island, islands, edge_borrows)
                else:
                    state.grow_pool()
                if island.history is not None:
                    island.history.append((state.m, state.n))
                if state.n < island.spec.n_recipes:
                    still_active.append(island)
            active = still_active

        runs = {
            code: EvolutionRun(
                model_name=self.name,
                region_code=code,
                transactions=islands[code].state.transactions(),
                final_pool_size=islands[code].state.m,
                initial_recipes=islands[code].initial_recipes,
                trace=islands[code].state.trace,
                history=(
                    tuple(islands[code].history)
                    if islands[code].history is not None
                    else None
                ),
            )
            for code in self.codes
        }
        return IslandOutcome(
            runs=runs,
            borrow_events={
                code: islands[code].state.trace.recipes_borrowed
                for code in self.codes
            },
            edge_borrows=edge_borrows,
            pools={code: islands[code].state.pool for code in self.codes},
        )

    def run_members(
        self,
        members: Sequence[int],
        seed: SeedLike = None,
        record_history: bool = False,
    ) -> list[EvolutionRun]:
        """Run the whole archipelago once, return the selected members.

        The grouped-dispatch entry (see
        :func:`~repro.runtime.runner.execute_archipelago`): one
        execution serves every member the dispatcher folded together.
        """
        outcome = self.run(seed, record_history=record_history)
        codes = self.codes
        return [outcome.runs[codes[index]] for index in members]

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------

    def _recipe_step(
        self,
        island: _Island,
        islands: Mapping[str, _Island],
        edge_borrows: dict[tuple[str, str], int],
    ) -> None:
        """One recipe step: maybe borrow a mother, then mutate and add.

        Migration decisions consume only the island's *migration*
        stream; an island whose inbound rate totals zero draws nothing
        from it, which is what keeps rate-0 runs bit-identical to
        isolated ones.
        """
        state = island.state
        mother: list[int] | None = None
        if island.inbound_total > 0.0:
            u = float(island.migration.random())
            cumulative = 0.0
            for edge in island.inbound:
                cumulative += edge.rate
                if u < cumulative:
                    donor = islands[edge.donor].state
                    mother = self._borrow_mother(state, donor, island.migration)
                    state.trace.recipes_borrowed += 1
                    pair = (edge.donor, edge.borrower)
                    edge_borrows[pair] = edge_borrows.get(pair, 0) + 1
                    break
        if mother is None:
            self.inner_model._recipe_step(state, island.dynamics)
            return
        state.add_recipe(
            self.inner_model.mutate_recipe(state, mother, island.dynamics)
        )

    def _borrow_mother(
        self,
        state: EvolutionState,
        donor: EvolutionState,
        migration: np.random.Generator,
    ) -> list[int]:
        """Import one donor recipe into the borrower's ingredient space.

        Donor ingredients are deduplicated, then routed through the
        borrower's pool accounting: pool members stay; universe-known
        non-pool ingredients are adopted into the pool (``"adopt"``,
        counted in ``trace.ingredients_added``) or dropped
        (``"filter"``); foreign ingredients are always dropped.
        Dropped slots are refilled with distinct local pool members —
        capped at the pool size, truncating the mother when the pool is
        smaller than the donor recipe (the old unbounded
        reject-duplicates loop spun forever on exactly that case).
        """
        rows = migration.integers(0, donor.n)
        donor_recipe = donor.recipes[int(rows)]
        adopt = self.import_policy == "adopt"
        mother: list[int] = []
        taken: set[int] = set()
        for ingredient in donor_recipe:
            if ingredient in taken:
                continue
            if state.in_pool(ingredient):
                mother.append(ingredient)
                taken.add(ingredient)
            elif adopt and state.in_universe(ingredient):
                state.adopt_ingredient(ingredient)
                mother.append(ingredient)
                taken.add(ingredient)
        target = min(len(donor_recipe), state.m)
        if len(mother) < target:
            candidates = [
                ingredient for ingredient in state.pool
                if ingredient not in taken
            ]
            while len(mother) < target:
                row = int(migration.integers(0, len(candidates)))
                candidates[row], candidates[-1] = (
                    candidates[-1], candidates[row]
                )
                mother.append(candidates.pop())
        return mother


class IslandMemberModel(CulinaryEvolutionModel):
    """One island of an :class:`IslandSimulation` as a standard model.

    A member run is a pure function of ``(simulation, member, seed)``:
    ``run()`` executes the *whole* archipelago for the given seed and
    returns this island's :class:`EvolutionRun`.  That makes islands
    first-class runtime citizens — member runs cache individually in
    the :class:`~repro.runtime.cache.RunCache` (the key canonicalizes
    the full simulation: inner model, every spec, topology, import
    policy, plus the :data:`ISLANDS_STREAM_VERSION` contract) and
    dispatch through any backend, while
    :func:`~repro.runtime.runner._plan_work` folds consecutive
    same-(simulation, seed) members back into one archipelago
    execution so an N-island request costs one simulation, not N.
    """

    def __init__(self, simulation: IslandSimulation, member_index: int):
        super().__init__(
            params=simulation.inner_model.params,
            fitness=simulation.inner_model.fitness,
        )
        self.simulation = simulation
        self.member_index = int(member_index)
        self.name = simulation.name

    @property
    def spec(self) -> CuisineSpec:
        """The member island's cuisine spec."""
        return self.simulation.specs[self.member_index]

    def resolve_engine(self, engine: str | None = None) -> str:
        """Always the scalar archipelago loop; overrides are ignored.

        The island engine is reference-dynamics by construction (its
        bit-identity contract is against isolated reference runs), so
        vectorized/batched requests do not apply.
        """
        return "reference"

    def engine_contract(self, engine: str | None = None) -> dict[str, object]:
        """The islands key space: engine name plus stream contract."""
        return {"engine": "islands", "stream_version": ISLANDS_STREAM_VERSION}

    def run(
        self,
        spec: CuisineSpec,
        seed: SeedLike = None,
        record_history: bool = False,
        engine: str | None = None,
        checkpointer: "object | None" = None,
    ) -> EvolutionRun:
        """Execute the archipelago and return this member's run.

        ``spec`` must be the member's own spec (the request carries it
        for cache keying); ``engine`` and ``checkpointer`` are accepted
        for dispatch compatibility and ignored — the archipelago loop
        is scalar and runs to completion.
        """
        if spec is not self.spec and spec != self.spec:
            raise ModelError(
                f"IslandMemberModel for {self.spec.region_code!r} cannot "
                f"run spec {spec.region_code!r}; members are bound to "
                f"their island"
            )
        return self.simulation.run_members(
            [self.member_index], seed=seed, record_history=record_history
        )[0]

    def _recipe_step(self, state, rng) -> None:  # pragma: no cover
        raise ModelError(
            "IslandMemberModel has no standalone recipe step; it runs "
            "through IslandSimulation"
        )


@dataclass(frozen=True)
class IslandEnsembleResult:
    """An ensemble of whole-archipelago runs, split per island.

    Attributes:
        codes: Island region codes, in spec order.
        seeds: Integer master seeds, one per archipelago execution.
        runs: Per-island run tuples keyed by code, aligned with
            ``seeds``.
        executed: How many member runs were actually executed (the rest
            were served from cache).
    """

    codes: tuple[str, ...]
    seeds: tuple[int, ...]
    runs: dict[str, tuple[EvolutionRun, ...]]
    executed: int

    @property
    def n_runs(self) -> int:
        return len(self.seeds)


def run_island_ensemble(
    simulation: IslandSimulation,
    n_runs: int,
    seed: SeedLike = None,
    runtime: "object | None" = None,
    cache: "object | None" = None,
    record_history: bool = False,
) -> IslandEnsembleResult:
    """Run ``n_runs`` archipelago simulations through the runtime.

    Requests are ordered seed-major (every member of archipelago 0,
    then every member of archipelago 1, …) so the dispatcher's
    same-(simulation, seed) grouping executes each uncached archipelago
    exactly once, while cached member runs are served per island from
    the :class:`~repro.runtime.cache.RunCache`.  Bit-identical across
    serial/thread/process/distributed backends for a fixed ``seed``.

    Args:
        simulation: The configured archipelago.
        n_runs: Independent archipelago executions.
        seed: Root seed; per-archipelago master seeds are spawned from
            it via :func:`~repro.rng.spawn_seeds`.
        runtime: :class:`~repro.runtime.RuntimeConfig` backend/cache
            selection; ``None`` = serial, no cache.
        cache: Explicit :class:`~repro.runtime.cache.RunCache`
            (overrides ``runtime.cache_dir``).
        record_history: Record every island's ``(m, n)`` trajectory.
    """
    from repro.runtime import (
        RunCache,
        RunRequest,
        RuntimeConfig,
        fingerprint_many,
    )
    from repro.runtime.runner import dispatch_requests

    if n_runs < 1:
        raise ModelError(f"n_runs must be >= 1, got {n_runs}")
    root = ensure_rng(seed)
    master_seeds = spawn_seeds(root, n_runs)
    members = simulation.members()

    config = runtime if runtime is not None else RuntimeConfig()
    if cache is None and config.cache_dir is not None:
        cache = RunCache(config.cache_dir)

    requests = [
        RunRequest(
            model=member,
            spec=member.spec,
            seed=master,
            record_history=record_history,
        )
        for master in master_seeds
        for member in members
    ]
    keys = None
    if cache is not None:
        # One canonicalization per member covers all of its seeds;
        # reorder the member-major key lists into the seed-major
        # request order.
        member_keys = [
            fingerprint_many(
                member, member.spec, master_seeds, record_history, None
            )
            for member in members
        ]
        keys = [
            member_keys[k][s]
            for s in range(n_runs)
            for k in range(len(members))
        ]
    results, dispatched = dispatch_requests(requests, keys, config, cache)

    codes = simulation.codes
    runs = {
        code: tuple(
            results[s * len(members) + k] for s in range(n_runs)
        )
        for k, code in enumerate(codes)
    }
    return IslandEnsembleResult(
        codes=codes,
        seeds=tuple(master_seeds),
        runs=runs,
        executed=len(dispatched),
    )
