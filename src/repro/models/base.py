"""Algorithm 1's shared simulation loop.

All four models of Sec. V share the same skeleton — fitness assignment,
pool initialization, and the ∂-vs-φ alternation between recipe creation
and ingredient-pool growth.  They differ only in how a new recipe is
produced: the copy-mutate variants copy a mother recipe and mutate it
(differing in replacement choice, the single abstract method here); the
null model composes a fresh random recipe.

Loop-bound resolution (see DESIGN.md §2): the paper's line 7 reads
``for l = 1 to N − n`` yet only recipe steps create recipes and the text
fixes the number of evolved recipes to ``N − n₀``; we therefore iterate
until the recipe pool reaches ``N``, with pool-growth steps not consuming
the recipe budget.  If the universe is exhausted while ∂ < φ, recipe
steps proceed anyway (nothing else can change ∂).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.errors import ModelError
from repro.models.fitness import FitnessStrategy, UniformFitness
from repro.models.params import CuisineSpec, ModelParams
from repro.models.state import EvolutionState, EvolutionTraceCounters
from repro.rng import SeedLike, ensure_rng

__all__ = ["EvolutionRun", "CulinaryEvolutionModel", "CopyMutateBase"]


@dataclass(frozen=True)
class EvolutionRun:
    """Result of one full Algorithm 1 simulation.

    Attributes:
        model_name: Registry name of the model that produced it.
        region_code: Cuisine simulated.
        transactions: Final recipe pool as ingredient-id sets.
        final_pool_size: ``m`` at termination.
        initial_recipes: ``n₀`` used.
        trace: Event counters accumulated during the run.
        history: Optional ``(m, n)`` trajectory sampled after every
            iteration when the run was started with
            ``record_history=True`` — the non-equilibrium growth curve
            of the ingredient pool vs the recipe pool.
    """

    model_name: str
    region_code: str
    transactions: list[frozenset[int]]
    final_pool_size: int
    initial_recipes: int
    trace: EvolutionTraceCounters
    history: tuple[tuple[int, int], ...] | None = None

    @property
    def n_recipes(self) -> int:
        return len(self.transactions)

    def pool_trajectory(self) -> tuple[tuple[int, int], ...]:
        """The recorded ``(m, n)`` trajectory.

        Raises:
            ModelError: If the run was not started with
                ``record_history=True``.
        """
        if self.history is None:
            raise ModelError(
                "run was not recorded; pass record_history=True to run()"
            )
        return self.history


class CulinaryEvolutionModel(abc.ABC):
    """Base class for the Sec. V culinary evolution models.

    Args:
        params: Model parameters (Sec. VI defaults).
        fitness: Fitness strategy (paper: Uniform(0, 1)).
    """

    #: Registry name, e.g. ``"CM-R"`` — set by concrete classes.
    name: ClassVar[str] = ""

    def __init__(
        self,
        params: ModelParams | None = None,
        fitness: FitnessStrategy | None = None,
    ):
        self.params = params if params is not None else self.default_params()
        self.fitness = fitness if fitness is not None else UniformFitness()

    @classmethod
    def default_params(cls) -> ModelParams:
        """Paper defaults for this model (overridden per variant)."""
        return ModelParams()

    # ------------------------------------------------------------------
    # The shared loop
    # ------------------------------------------------------------------

    def run(
        self,
        spec: CuisineSpec,
        seed: SeedLike = None,
        record_history: bool = False,
    ) -> EvolutionRun:
        """Simulate one cuisine evolution (Algorithm 1).

        Args:
            spec: Cuisine inputs (``I``, ``s̄``, ``N``, ``φ``).
            seed: RNG seed; fixed seeds reproduce runs exactly.
            record_history: Also record the ``(m, n)`` trajectory after
                every iteration (pool growth analysis).

        Returns:
            The completed :class:`EvolutionRun`.
        """
        rng = ensure_rng(seed)
        fitness_values = np.asarray(
            self.fitness.assign(spec.ingredient_ids, rng), dtype=np.float64
        )
        n0 = min(
            self.params.derive_initial_recipes(spec.phi), spec.n_recipes
        )
        state = EvolutionState(
            spec=spec,
            fitness=fitness_values,
            rng=rng,
            initial_pool_size=self.params.initial_pool_size,
            initial_recipes=n0,
        )
        history: list[tuple[int, int]] | None = (
            [(state.m, state.n)] if record_history else None
        )
        while state.n < spec.n_recipes:
            if state.pool_ratio() >= spec.phi or not state.can_grow_pool():
                self._recipe_step(state, rng)
            else:
                state.grow_pool()
            if history is not None:
                history.append((state.m, state.n))
        return EvolutionRun(
            model_name=self.name,
            region_code=spec.region_code,
            transactions=state.transactions(),
            final_pool_size=state.m,
            initial_recipes=n0,
            trace=state.trace,
            history=tuple(history) if history is not None else None,
        )

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _recipe_step(
        self, state: EvolutionState, rng: np.random.Generator
    ) -> None:
        """Produce and add one new recipe (lines 10-19 / null variant)."""


class CopyMutateBase(CulinaryEvolutionModel):
    """Shared copy-mutate recipe step (Algorithm 1 lines 10-19).

    Subclasses implement :meth:`_choose_replacement` — the only point
    where CM-R, CM-C and CM-M differ.
    """

    def _recipe_step(
        self, state: EvolutionState, rng: np.random.Generator
    ) -> None:
        mother = state.recipes[state.random_recipe_index()]
        recipe = list(mother)
        for _g in range(self.params.mutations):
            state.trace.mutations_attempted += 1
            victim_position = int(rng.integers(0, len(recipe)))
            victim = recipe[victim_position]
            replacement = self._choose_replacement(state, victim, rng)
            if replacement is None:
                state.trace.mutations_skipped_no_candidate += 1
                continue
            if replacement == victim:
                state.trace.mutations_rejected_duplicate += 1
                continue
            if state.fitness_of(replacement) <= state.fitness_of(victim):
                state.trace.mutations_rejected_fitness += 1
                continue
            if replacement in recipe:
                if self.params.duplicate_policy == "skip":
                    state.trace.mutations_rejected_duplicate += 1
                    continue
                # "allow": the duplicate collapses when the recipe is
                # treated as a set, shrinking it by one.
            recipe[victim_position] = replacement
            state.trace.mutations_accepted += 1
        state.add_recipe(recipe)

    @abc.abstractmethod
    def _choose_replacement(
        self,
        state: EvolutionState,
        victim: int,
        rng: np.random.Generator,
    ) -> int | None:
        """Pick the candidate ``j`` from the pool, or ``None`` to skip."""
