"""Algorithm 1's shared simulation loop.

All four models of Sec. V share the same skeleton — fitness assignment,
pool initialization, and the ∂-vs-φ alternation between recipe creation
and ingredient-pool growth.  They differ only in how a new recipe is
produced: the copy-mutate variants copy a mother recipe and mutate it
(differing in replacement choice, the single abstract method here); the
null model composes a fresh random recipe.

Loop-bound resolution (see DESIGN.md §2): the paper's line 7 reads
``for l = 1 to N − n`` yet only recipe steps create recipes and the text
fixes the number of evolved recipes to ``N − n₀``; we therefore iterate
until the recipe pool reaches ``N``, with pool-growth steps not consuming
the recipe budget.  If the universe is exhausted while ∂ < φ, recipe
steps proceed anyway (nothing else can change ∂).

Engines (DESIGN.md §5, §7): :meth:`CulinaryEvolutionModel.run`
dispatches on the selected engine.  The scalar loop in this module is
the ``"reference"`` engine — the executable specification.  The
``"vectorized"`` engine (:mod:`repro.models.vectorized`, the default)
replays the same dynamics over array-backed state with batched RNG
draws; the ``"batched"`` engine (:mod:`repro.models.batched`) stacks a
whole same-cell ensemble and advances every run together, bit-identical
to ``"vectorized"`` run for run.  Models opt in by declaring
``vectorized_kind`` on their class; unsupported requests degrade down
the chain (batched → vectorized → reference) automatically.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import ClassVar, Sequence

import numpy as np

from repro.errors import ModelError
from repro.models.fitness import FitnessStrategy, UniformFitness
from repro.models.params import ENGINES, CuisineSpec, ModelParams
from repro.models.state import EvolutionState, EvolutionTraceCounters
from repro.rng import SeedLike, ensure_rng

__all__ = ["EvolutionRun", "CulinaryEvolutionModel", "CopyMutateBase"]

#: RNG-stream contract version of the reference engine (scalar draws in
#: loop order).  Part of the run-cache key; bump on any change to the
#: draw sequence.
REFERENCE_STREAM_VERSION = 1


@dataclass(frozen=True)
class EvolutionRun:
    """Result of one full Algorithm 1 simulation.

    Attributes:
        model_name: Registry name of the model that produced it.
        region_code: Cuisine simulated.
        transactions: Final recipe pool as ingredient-id sets.  The
            reference and vectorized engines store an eager
            ``list``; the batched engine stores a lazy, equal-comparing
            :class:`~repro.models.batched.BatchedTransactions` view
            that materializes recipes on read and pickles as the plain
            list.
        final_pool_size: ``m`` at termination.
        initial_recipes: ``n₀`` used.
        trace: Event counters accumulated during the run.
        history: Optional ``(m, n)`` trajectory sampled after every
            iteration when the run was started with
            ``record_history=True`` — the non-equilibrium growth curve
            of the ingredient pool vs the recipe pool.
    """

    model_name: str
    region_code: str
    transactions: Sequence[frozenset[int]]
    final_pool_size: int
    initial_recipes: int
    trace: EvolutionTraceCounters
    history: tuple[tuple[int, int], ...] | None = None

    @property
    def n_recipes(self) -> int:
        return len(self.transactions)

    def pool_trajectory(self) -> tuple[tuple[int, int], ...]:
        """The recorded ``(m, n)`` trajectory.

        Raises:
            ModelError: If the run was not started with
                ``record_history=True``.
        """
        if self.history is None:
            raise ModelError(
                "run was not recorded; pass record_history=True to run()"
            )
        return self.history


class CulinaryEvolutionModel(abc.ABC):
    """Base class for the Sec. V culinary evolution models.

    Args:
        params: Model parameters (Sec. VI defaults).
        fitness: Fitness strategy (paper: Uniform(0, 1)).
        engine: Convenience override for ``params.engine``
            (``"reference"``, ``"vectorized"`` or ``"batched"``);
            ``None`` keeps the params' choice.
    """

    #: Registry name, e.g. ``"CM-R"`` — set by concrete classes.
    name: ClassVar[str] = ""

    #: Vectorized recipe-step kind (``"pool"``/``"category"``/
    #: ``"mixture"``/``"null"``), declared by classes the vectorized
    #: engine supports.  Deliberately looked up on the *exact* class
    #: (never inherited): a subclass that changes mutation behavior
    #: without redeclaring it falls back to the reference engine
    #: instead of running a mismatched vectorized step.
    vectorized_kind: ClassVar[str | None] = None

    def __init__(
        self,
        params: ModelParams | None = None,
        fitness: FitnessStrategy | None = None,
        engine: str | None = None,
    ):
        self.params = params if params is not None else self.default_params()
        if engine is not None:
            self.params = replace(self.params, engine=engine)
        self.fitness = fitness if fitness is not None else UniformFitness()

    @classmethod
    def default_params(cls) -> ModelParams:
        """Paper defaults for this model (overridden per variant)."""
        return ModelParams()

    # ------------------------------------------------------------------
    # Engine selection
    # ------------------------------------------------------------------

    def resolve_engine(self, engine: str | None = None) -> str:
        """The engine a run would actually execute on.

        Args:
            engine: Per-run override; ``None`` uses ``params.engine``.

        Returns:
            ``"batched"``, ``"vectorized"`` or ``"reference"``.
            Requests degrade along the capability chain instead of
            erroring: a batched request resolves to ``"vectorized"``
            when the model's kind cannot be run-stacked (CM-V's
            variable-length recipes), and a vectorized (or degraded
            batched) request resolves to ``"reference"`` when the
            model's class does not declare ``vectorized_kind`` itself
            (extensions with custom recipe steps).

        Raises:
            ModelError: On an unknown engine name.
        """
        requested = engine if engine is not None else self.params.engine
        if requested not in ENGINES:
            raise ModelError(
                f"unknown engine {requested!r}; available: {ENGINES}"
            )
        kind = type(self).__dict__.get("vectorized_kind")
        if requested == "batched":
            from repro.models.batched import BATCHED_KINDS

            if kind in BATCHED_KINDS:
                return "batched"
            requested = "vectorized"
        if requested == "vectorized" and kind is None:
            return "reference"
        return requested

    def engine_contract(self, engine: str | None = None) -> dict[str, object]:
        """The resolved engine plus its RNG-stream contract version.

        This is what the run cache keys on (beyond the model state
        itself): two configurations that consume the RNG stream
        differently must never share a cache entry.
        """
        resolved = self.resolve_engine(engine)
        if resolved == "batched":
            from repro.models.batched import BATCHED_STREAM_VERSION

            # Batched runs are bit-identical to vectorized ones, but the
            # key space is deliberately not shared: bit-identity is a
            # tested invariant of the engines, not a property the cache
            # should assume (DESIGN.md §7).
            return {
                "engine": resolved,
                "stream_version": BATCHED_STREAM_VERSION,
            }
        if resolved == "vectorized":
            from repro.models.vectorized import VECTORIZED_STREAM_VERSION

            return {
                "engine": resolved,
                "stream_version": VECTORIZED_STREAM_VERSION,
            }
        return {"engine": resolved, "stream_version": REFERENCE_STREAM_VERSION}

    # ------------------------------------------------------------------
    # The shared loop
    # ------------------------------------------------------------------

    def run(
        self,
        spec: CuisineSpec,
        seed: SeedLike = None,
        record_history: bool = False,
        engine: str | None = None,
        checkpointer: "object | None" = None,
    ) -> EvolutionRun:
        """Simulate one cuisine evolution (Algorithm 1).

        Args:
            spec: Cuisine inputs (``I``, ``s̄``, ``N``, ``φ``).
            seed: RNG seed; fixed seeds reproduce runs exactly (per
                engine — ``"batched"`` and ``"vectorized"`` runs are
                bit-identical to each other, while the ``"reference"``
                engine consumes the stream in a different order, so the
                same seed yields a different, equally valid run there).
            record_history: Also record the ``(m, n)`` trajectory after
                every iteration (pool growth analysis).
            engine: Per-run engine override (default:
                ``params.engine``): ``"reference"``, ``"vectorized"``
                or ``"batched"`` — the last two are supported by the
                four paper models, while CM-V supports ``"vectorized"``
                only (a batched request on it degrades there); see
                :meth:`resolve_engine`.
            checkpointer: Optional
                :class:`repro.runtime.checkpoint.RunCheckpointer` for
                crash-consistent periodic snapshots and bit-identical
                resume (DESIGN.md §9).  Honored by the vectorized and
                batched engines; the reference engine ignores it (it is
                the executable specification, not a production path).

        Returns:
            The completed :class:`EvolutionRun`.
        """
        rng = ensure_rng(seed)
        resolved = self.resolve_engine(engine)
        if resolved == "batched":
            from repro.models.batched import run_batched

            # A single run is a batch of one; run_batched keeps every
            # run bit-identical to the vectorized engine regardless of
            # batch composition.
            return run_batched(
                self,
                spec,
                [rng],
                record_history=record_history,
                checkpointer=checkpointer,
            )[0]
        if resolved == "vectorized":
            from repro.models.vectorized import run_vectorized

            return run_vectorized(
                self,
                spec,
                rng=rng,
                record_history=record_history,
                checkpointer=checkpointer,
            )
        fitness_values = np.asarray(
            self.fitness.assign(spec.ingredient_ids, rng), dtype=np.float64
        )
        n0 = min(
            self.params.derive_initial_recipes(spec.phi), spec.n_recipes
        )
        state = EvolutionState(
            spec=spec,
            fitness=fitness_values,
            rng=rng,
            initial_pool_size=self.params.initial_pool_size,
            initial_recipes=n0,
        )
        history: list[tuple[int, int]] | None = (
            [(state.m, state.n)] if record_history else None
        )
        while state.n < spec.n_recipes:
            if state.pool_ratio() >= spec.phi or not state.can_grow_pool():
                self._recipe_step(state, rng)
            else:
                state.grow_pool()
            if history is not None:
                history.append((state.m, state.n))
        return EvolutionRun(
            model_name=self.name,
            region_code=spec.region_code,
            transactions=state.transactions(),
            final_pool_size=state.m,
            initial_recipes=n0,
            trace=state.trace,
            history=tuple(history) if history is not None else None,
        )

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _recipe_step(
        self, state: EvolutionState, rng: np.random.Generator
    ) -> None:
        """Produce and add one new recipe (lines 10-19 / null variant)."""


class CopyMutateBase(CulinaryEvolutionModel):
    """Shared copy-mutate recipe step (Algorithm 1 lines 10-19).

    Subclasses implement :meth:`_choose_replacement` — the only point
    where CM-R, CM-C and CM-M differ.

    Two public seams exist for engines that supply their own mother
    recipe (the island engine, extensions):

    * :meth:`mutate_recipe` — copy a given mother and apply the full
      M-mutation loop, consuming exactly the draws the standard recipe
      step would;
    * :meth:`choose_replacement` — one candidate draw, wrapping the
      subclass hook.

    Code outside the class hierarchy must use these instead of reaching
    into ``_choose_replacement``/``_recipe_step``.
    """

    def _recipe_step(
        self, state: EvolutionState, rng: np.random.Generator
    ) -> None:
        mother = state.recipes[state.random_recipe_index()]
        state.add_recipe(self.mutate_recipe(state, mother, rng))

    def mutate_recipe(
        self,
        state: EvolutionState,
        mother: list[int],
        rng: np.random.Generator,
    ) -> list[int]:
        """Copy ``mother`` and apply the M-mutation loop (lines 11-18).

        The supported seam for callers that pick the mother themselves
        (e.g. a borrowed recipe under migration, DESIGN.md §10): given
        the same mother, it consumes exactly the RNG draws the standard
        recipe step would, and updates the state's mutation counters.
        The caller adds the result via ``state.add_recipe``.
        """
        recipe = list(mother)
        for _g in range(self.params.mutations):
            state.trace.mutations_attempted += 1
            victim_position = int(rng.integers(0, len(recipe)))
            victim = recipe[victim_position]
            replacement = self.choose_replacement(state, victim, rng)
            if replacement is None:
                state.trace.mutations_skipped_no_candidate += 1
                continue
            if replacement == victim:
                state.trace.mutations_rejected_duplicate += 1
                continue
            if state.fitness_of(replacement) <= state.fitness_of(victim):
                state.trace.mutations_rejected_fitness += 1
                continue
            if replacement in recipe:
                if self.params.duplicate_policy == "skip":
                    state.trace.mutations_rejected_duplicate += 1
                    continue
                # "allow": the duplicate collapses when the recipe is
                # treated as a set, shrinking it by one.
            recipe[victim_position] = replacement
            state.trace.mutations_accepted += 1
        return recipe

    def choose_replacement(
        self,
        state: EvolutionState,
        victim: int,
        rng: np.random.Generator,
    ) -> int | None:
        """Pick the candidate ``j`` from the pool, or ``None`` to skip.

        Public wrapper around the variant hook — the one supported
        mutation seam for extensions and the island engine.
        """
        return self._choose_replacement(state, victim, rng)

    @abc.abstractmethod
    def _choose_replacement(
        self,
        state: EvolutionState,
        victim: int,
        rng: np.random.Generator,
    ) -> int | None:
        """Pick the candidate ``j`` from the pool, or ``None`` to skip."""
