"""Ensemble running and aggregation (Sec. V, last step).

"For normalization purposes, we create 100 such sets of random
copy-mutate recipes and study the aggregated statistics."  This module
runs a model repeatedly with independent seeds and aggregates the
per-run rank-frequency curves of frequent combinations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.itemsets import (
    CATEGORY_INDEX,
    mine_frequent_itemsets,
)
from repro.analysis.rank_frequency import (
    RankFrequencyCurve,
    average_curves,
    curve_from_mining,
)
from repro.config import DEFAULT_MINING, MiningConfig, PAPER
from repro.errors import ModelError, RunCacheError
from repro.lexicon.lexicon import Lexicon
from repro.models.base import CulinaryEvolutionModel, EvolutionRun
from repro.models.params import CuisineSpec
from repro.rng import SeedLike, ensure_rng, spawn_seeds
from repro.runtime import (
    CurveCache,
    RuntimeConfig,
    curve_key,
    execute_runs,
    parallel_map,
    transactions_fingerprint,
)

__all__ = [
    "CurveMiningTask",
    "EnsembleResult",
    "aggregate_ensemble",
    "ensemble_curve",
    "ensemble_curves",
    "mine_curve_task",
    "run_ensemble",
]


@dataclass(frozen=True)
class EnsembleResult:
    """Runs plus aggregated curves for one (model, cuisine) pair.

    Attributes:
        model_name: The model's registry name.
        region_code: Cuisine simulated.
        runs: Individual simulation runs.
        ingredient_curve: Rank-aligned mean curve of frequent ingredient
            combinations over runs.
        category_curve: Same at the category level, when requested.
    """

    model_name: str
    region_code: str
    runs: tuple[EvolutionRun, ...]
    ingredient_curve: RankFrequencyCurve
    category_curve: RankFrequencyCurve | None = None

    @property
    def n_runs(self) -> int:
        return len(self.runs)


def _category_transactions(
    run: EvolutionRun, lexicon: Lexicon
) -> list[frozenset[int]]:
    id_to_category = lexicon.id_to_category_array()
    return [
        frozenset(CATEGORY_INDEX[id_to_category[i]] for i in transaction)
        for transaction in run.transactions
    ]


@dataclass(frozen=True)
class CurveMiningTask:
    """One run's mining work, as a pure, picklable payload.

    Everything :func:`mine_curve_task` needs crosses the process
    boundary inside this dataclass — no closure state — which is what
    keeps :func:`ensemble_curve`'s fan-out on the true ``process``
    backend instead of degrading to GIL-bound threads.

    Attributes:
        transactions: The transactions to mine (level conversion already
            applied by the caller).
        mining: Support/size/algorithm configuration.
        label: Per-run curve label (``"<model>#<index>"``).
    """

    transactions: tuple[frozenset[int], ...]
    mining: MiningConfig
    label: str


def mine_curve_task(task: CurveMiningTask) -> RankFrequencyCurve:
    """Mine one task into a rank-frequency curve.

    Module-level by design: the process backend pickles this function by
    reference and the task by value (see
    :func:`~repro.runtime.runner.parallel_map`).
    """
    result = mine_frequent_itemsets(
        task.transactions,
        min_support=task.mining.min_support,
        algorithm=task.mining.algorithm,
        max_size=task.mining.max_size,
    )
    return curve_from_mining(result, task.label)


def ensemble_curves(
    cells: list[tuple[tuple[EvolutionRun, ...] | list[EvolutionRun], str]],
    mining: MiningConfig = DEFAULT_MINING,
    level: str = "ingredient",
    lexicon: Lexicon | None = None,
    runtime: RuntimeConfig | None = None,
    curve_cache: CurveCache | None = None,
) -> list[RankFrequencyCurve]:
    """Aggregate many ``(runs, label)`` cells, mining them in one pass.

    The grid-mining entry point: a figure-4 style grid of
    (model × cuisine) cells used to pay one executor fan-out *per
    cell* — pool startup, probe, teardown, many times over.  Here every
    cell's uncached :class:`CurveMiningTask` items are concatenated
    into a single order-preserving
    :func:`~repro.runtime.runner.parallel_map` call, so one pool (or
    one distributed spool session) serves the whole grid, and the
    per-cell averages are then assembled locally.  Results are
    bit-identical to calling :func:`ensemble_curve` per cell: tasks are
    pure, the map preserves order, and averaging happens per cell
    either way.

    When a curve cache is available (explicitly, or built from
    ``runtime.cache_dir``), each run's mined frequencies are served
    from disk when present and written back when mined, keyed by the
    exact transaction content plus the mining config — a warm grid
    performs zero mining calls (DESIGN.md §6).

    Args:
        cells: ``(runs, label)`` pairs; output order follows input.
        mining: Support/size/algorithm configuration (shared).
        level: ``"ingredient"`` or ``"category"``.
        lexicon: Required for ``level="category"``.
        runtime: Fan-out backend/jobs/cache; ``None`` = serial.
        curve_cache: Explicit mined-curve cache (overrides
            ``runtime.cache_dir``).

    Returns:
        One averaged curve per cell, aligned with ``cells``.
    """
    for runs, _label in cells:
        if not runs:
            raise ModelError("cannot aggregate zero runs")
    if level == "category" and lexicon is None:
        raise ModelError("category-level aggregation requires a lexicon")
    config = runtime if runtime is not None else RuntimeConfig()
    if curve_cache is None and config.cache_dir is not None:
        curve_cache = CurveCache(config.cache_dir)

    # Flatten to per-run units tagged with their cell: (cell, index,
    # transactions).  All cache and mining bookkeeping below works on
    # this flat list; cells only reappear at averaging time.
    flat: list[tuple[int, int, object]] = []
    for cell, (runs, _label) in enumerate(cells):
        for index, run in enumerate(runs):
            transactions = (
                run.transactions
                if level == "ingredient"
                else _category_transactions(run, lexicon)  # type: ignore[arg-type]
            )
            flat.append((cell, index, transactions))

    curves: list[RankFrequencyCurve | None] = [None] * len(flat)
    keys: list[str] | None = None
    pending = list(range(len(flat)))
    if curve_cache is not None:
        keys = [
            curve_key(
                transactions_fingerprint(transactions), mining, level=level
            )
            for _cell, _index, transactions in flat
        ]
        pending = []
        for position, key in enumerate(keys):
            cell, index, _transactions = flat[position]
            frequencies = curve_cache.get(key)
            # Guard the payload type: an entry that unpickles to the
            # wrong shape (layout drift, damaged file) is a miss to
            # re-mine, not a crash.
            if (
                isinstance(frequencies, np.ndarray)
                and frequencies.ndim == 1
            ):
                curves[position] = RankFrequencyCurve(
                    f"{cells[cell][1]}#{index}", frequencies
                )
            else:
                pending.append(position)

    if pending:
        tasks = [
            CurveMiningTask(
                transactions=tuple(flat[position][2]),
                mining=mining,
                label=f"{cells[flat[position][0]][1]}#{flat[position][1]}",
            )
            for position in pending
        ]
        mined = parallel_map(mine_curve_task, tasks, runtime=config)
        for position, curve in zip(pending, mined):
            curves[position] = curve
            if curve_cache is not None and keys is not None:
                # Same policy as the run cache: a write failure must
                # never discard mined results; stop writing instead.
                try:
                    curve_cache.put(keys[position], curve.frequencies)
                except RunCacheError:
                    curve_cache = None

    averaged: list[RankFrequencyCurve] = []
    cursor = 0
    for runs, label in cells:
        cell_curves = curves[cursor:cursor + len(runs)]
        cursor += len(runs)
        averaged.append(
            average_curves(cell_curves, label)  # type: ignore[arg-type]
        )
    return averaged


def ensemble_curve(
    runs: tuple[EvolutionRun, ...] | list[EvolutionRun],
    label: str,
    mining: MiningConfig = DEFAULT_MINING,
    level: str = "ingredient",
    lexicon: Lexicon | None = None,
    runtime: RuntimeConfig | None = None,
    curve_cache: CurveCache | None = None,
) -> RankFrequencyCurve:
    """Aggregate runs into one rank-frequency curve at the given level.

    The single-cell case of :func:`ensemble_curves` (one ``(runs,
    label)`` pair): per-run mining fans out through
    :func:`~repro.runtime.runner.parallel_map` as module-level
    :func:`mine_curve_task` calls over :class:`CurveMiningTask`
    payloads, order-preserving and cache-aware, so the averaged curve
    is identical to the serial path on every backend.  Grid callers
    with many cells should call :func:`ensemble_curves` directly and
    pay for one fan-out total.
    """
    return ensemble_curves(
        [(runs, label)],
        mining=mining,
        level=level,
        lexicon=lexicon,
        runtime=runtime,
        curve_cache=curve_cache,
    )[0]


def aggregate_ensemble(
    model_name: str,
    region_code: str,
    runs: tuple[EvolutionRun, ...] | list[EvolutionRun],
    mining: MiningConfig = DEFAULT_MINING,
    lexicon: Lexicon | None = None,
    include_category_level: bool = False,
    runtime: RuntimeConfig | None = None,
    curve_cache: CurveCache | None = None,
) -> EnsembleResult:
    """Aggregate completed runs into an :class:`EnsembleResult`.

    This is the mining/averaging half of :func:`run_ensemble`, split out
    so callers that already hold the runs — a grid sweep merging
    :class:`~repro.runtime.sweep.SweepResult` cells, a cache replay —
    produce byte-identical ensembles to the run-and-aggregate path.
    Per-run mining respects the ``runtime`` fan-out (order-preserving,
    so results do not depend on the backend) and the mined-curve cache
    (explicit, or built from ``runtime.cache_dir``).
    """
    if not runs:
        raise ModelError("cannot aggregate an ensemble of zero runs")
    runs = tuple(runs)
    ingredient_curve = ensemble_curve(
        runs, model_name, mining=mining, level="ingredient", runtime=runtime,
        curve_cache=curve_cache,
    )
    category_curve = None
    if include_category_level:
        category_curve = ensemble_curve(
            runs, model_name, mining=mining, level="category",
            lexicon=lexicon, runtime=runtime, curve_cache=curve_cache,
        )
    return EnsembleResult(
        model_name=model_name,
        region_code=region_code,
        runs=runs,
        ingredient_curve=ingredient_curve,
        category_curve=category_curve,
    )


def run_ensemble(
    model: CulinaryEvolutionModel,
    spec: CuisineSpec,
    n_runs: int = PAPER.model_ensemble_runs,
    seed: SeedLike = None,
    mining: MiningConfig = DEFAULT_MINING,
    lexicon: Lexicon | None = None,
    include_category_level: bool = False,
    runtime: RuntimeConfig | None = None,
    engine: str | None = None,
) -> EnsembleResult:
    """Run ``model`` ``n_runs`` times and aggregate (Sec. V).

    Args:
        model: A configured evolution model.
        spec: Cuisine inputs.
        n_runs: Independent runs (paper: 100).
        seed: Root seed; children are spawned per run.
        mining: Support threshold configuration (paper: 0.05).
        lexicon: Needed only when ``include_category_level``.
        include_category_level: Also aggregate category combinations.
        runtime: Execution backend/jobs/cache for the runs
            (:mod:`repro.runtime`); ``None`` executes serially with no
            cache.  Results are bit-identical across backends for a
            fixed ``seed``.
        engine: Per-run engine override (``"reference"``,
            ``"vectorized"`` or ``"batched"``; ``None`` keeps the
            model's ``params.engine``).  The whole ensemble is one
            same-cell group, so an engine that resolves to
            ``"batched"`` — the four paper models; CM-V degrades to
            vectorized — executes the uncached runs as one stacked
            pass instead of ``n_runs`` dispatches (DESIGN.md §7).

    Returns:
        An :class:`EnsembleResult`.
    """
    if n_runs < 1:
        raise ModelError(f"n_runs must be >= 1, got {n_runs}")
    root = ensure_rng(seed)
    runs = tuple(
        execute_runs(
            model, spec, spawn_seeds(root, n_runs), runtime=runtime,
            engine=engine,
        )
    )
    return aggregate_ensemble(
        model.name,
        spec.region_code,
        runs,
        mining=mining,
        lexicon=lexicon,
        include_category_level=include_category_level,
        runtime=runtime,
    )
