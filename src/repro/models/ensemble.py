"""Ensemble running and aggregation (Sec. V, last step).

"For normalization purposes, we create 100 such sets of random
copy-mutate recipes and study the aggregated statistics."  This module
runs a model repeatedly with independent seeds and aggregates the
per-run rank-frequency curves of frequent combinations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.itemsets import (
    CATEGORY_INDEX,
    mine_frequent_itemsets,
)
from repro.analysis.rank_frequency import (
    RankFrequencyCurve,
    average_curves,
    curve_from_mining,
)
from repro.config import DEFAULT_MINING, MiningConfig, PAPER
from repro.errors import ModelError
from repro.lexicon.lexicon import Lexicon
from repro.models.base import CulinaryEvolutionModel, EvolutionRun
from repro.models.params import CuisineSpec
from repro.rng import SeedLike, ensure_rng, spawn_seeds
from repro.runtime import RuntimeConfig, execute_runs, parallel_map

__all__ = [
    "EnsembleResult",
    "aggregate_ensemble",
    "ensemble_curve",
    "run_ensemble",
]


@dataclass(frozen=True)
class EnsembleResult:
    """Runs plus aggregated curves for one (model, cuisine) pair.

    Attributes:
        model_name: The model's registry name.
        region_code: Cuisine simulated.
        runs: Individual simulation runs.
        ingredient_curve: Rank-aligned mean curve of frequent ingredient
            combinations over runs.
        category_curve: Same at the category level, when requested.
    """

    model_name: str
    region_code: str
    runs: tuple[EvolutionRun, ...]
    ingredient_curve: RankFrequencyCurve
    category_curve: RankFrequencyCurve | None = None

    @property
    def n_runs(self) -> int:
        return len(self.runs)


def _category_transactions(
    run: EvolutionRun, lexicon: Lexicon
) -> list[frozenset[int]]:
    id_to_category = lexicon.id_to_category_array()
    return [
        frozenset(CATEGORY_INDEX[id_to_category[i]] for i in transaction)
        for transaction in run.transactions
    ]


def ensemble_curve(
    runs: tuple[EvolutionRun, ...] | list[EvolutionRun],
    label: str,
    mining: MiningConfig = DEFAULT_MINING,
    level: str = "ingredient",
    lexicon: Lexicon | None = None,
    runtime: RuntimeConfig | None = None,
) -> RankFrequencyCurve:
    """Aggregate runs into one rank-frequency curve at the given level.

    Per-run mining fans out through
    :func:`~repro.runtime.runner.parallel_map` when a parallel
    ``runtime`` is configured.  The map preserves run order, so the
    averaged curve is identical to the serial path on every backend.
    Note the fan-out is thread-based even under ``backend="process"``
    (the mining closure cannot cross process boundaries), so the
    pure-Python miner remains GIL-bound; the seam exists so a picklable
    miner or a GIL-releasing implementation scales without touching
    callers.
    """
    if not runs:
        raise ModelError("cannot aggregate zero runs")
    if level == "category" and lexicon is None:
        raise ModelError("category-level aggregation requires a lexicon")

    def _mine_one(indexed: tuple[int, EvolutionRun]) -> RankFrequencyCurve:
        index, run = indexed
        transactions = (
            run.transactions
            if level == "ingredient"
            else _category_transactions(run, lexicon)  # type: ignore[arg-type]
        )
        result = mine_frequent_itemsets(
            transactions,
            min_support=mining.min_support,
            algorithm=mining.algorithm,
            max_size=mining.max_size,
        )
        return curve_from_mining(result, f"{label}#{index}")

    curves = parallel_map(_mine_one, list(enumerate(runs)), runtime=runtime)
    return average_curves(curves, label)


def aggregate_ensemble(
    model_name: str,
    region_code: str,
    runs: tuple[EvolutionRun, ...] | list[EvolutionRun],
    mining: MiningConfig = DEFAULT_MINING,
    lexicon: Lexicon | None = None,
    include_category_level: bool = False,
    runtime: RuntimeConfig | None = None,
) -> EnsembleResult:
    """Aggregate completed runs into an :class:`EnsembleResult`.

    This is the mining/averaging half of :func:`run_ensemble`, split out
    so callers that already hold the runs — a grid sweep merging
    :class:`~repro.runtime.sweep.SweepResult` cells, a cache replay —
    produce byte-identical ensembles to the run-and-aggregate path.
    Per-run mining respects the ``runtime`` fan-out (order-preserving,
    so results do not depend on the backend).
    """
    if not runs:
        raise ModelError("cannot aggregate an ensemble of zero runs")
    runs = tuple(runs)
    ingredient_curve = ensemble_curve(
        runs, model_name, mining=mining, level="ingredient", runtime=runtime
    )
    category_curve = None
    if include_category_level:
        category_curve = ensemble_curve(
            runs, model_name, mining=mining, level="category",
            lexicon=lexicon, runtime=runtime,
        )
    return EnsembleResult(
        model_name=model_name,
        region_code=region_code,
        runs=runs,
        ingredient_curve=ingredient_curve,
        category_curve=category_curve,
    )


def run_ensemble(
    model: CulinaryEvolutionModel,
    spec: CuisineSpec,
    n_runs: int = PAPER.model_ensemble_runs,
    seed: SeedLike = None,
    mining: MiningConfig = DEFAULT_MINING,
    lexicon: Lexicon | None = None,
    include_category_level: bool = False,
    runtime: RuntimeConfig | None = None,
) -> EnsembleResult:
    """Run ``model`` ``n_runs`` times and aggregate (Sec. V).

    Args:
        model: A configured evolution model.
        spec: Cuisine inputs.
        n_runs: Independent runs (paper: 100).
        seed: Root seed; children are spawned per run.
        mining: Support threshold configuration (paper: 0.05).
        lexicon: Needed only when ``include_category_level``.
        include_category_level: Also aggregate category combinations.
        runtime: Execution backend/jobs/cache for the runs
            (:mod:`repro.runtime`); ``None`` executes serially with no
            cache.  Results are bit-identical across backends for a
            fixed ``seed``.

    Returns:
        An :class:`EnsembleResult`.
    """
    if n_runs < 1:
        raise ModelError(f"n_runs must be >= 1, got {n_runs}")
    root = ensure_rng(seed)
    runs = tuple(
        execute_runs(model, spec, spawn_seeds(root, n_runs), runtime=runtime)
    )
    return aggregate_ensemble(
        model.name,
        spec.region_code,
        runs,
        mining=mining,
        lexicon=lexicon,
        include_category_level=include_category_level,
        runtime=runtime,
    )
