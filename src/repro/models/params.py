"""Model parameters and the per-cuisine inputs of Algorithm 1.

Algorithm 1 takes, per cuisine: the ingredient list ``I``, average recipe
size ``s̄``, initial pool sizes ``m`` and ``n``, target recipe count
``N``, mutation count ``M`` and the ingredients-per-recipes ratio ``φ``.
:class:`CuisineSpec` packages the cuisine-derived quantities;
:class:`ModelParams` the model-side knobs with the paper's Sec. VI
defaults (m=20, n=m/φ, M=4 for CM-R and 6 for CM-C/CM-M).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


from repro.config import PAPER
from repro.corpus.dataset import CuisineView
from repro.errors import ParameterError
from repro.lexicon.categories import Category
from repro.lexicon.lexicon import Lexicon

__all__ = ["ENGINES", "ModelParams", "CuisineSpec"]

#: Recognized simulation engines (see DESIGN.md §5 and §7).
#: ``"reference"`` is the scalar Algorithm 1 loop kept as the executable
#: specification; ``"vectorized"`` is the array-backed engine with
#: batched RNG draws (the default — ≥3× single-run throughput, same
#: dynamics under its own versioned determinism contract);
#: ``"batched"`` stacks a whole same-cell ensemble into ``(runs, …)``
#: arrays and advances every run per step in one numpy pass, with
#: per-run results bit-identical to ``"vectorized"``.
ENGINES: tuple[str, ...] = ("reference", "vectorized", "batched")


@dataclass(frozen=True)
class ModelParams:
    """Knobs of the copy-mutate family (Algorithm 1 + our resolutions).

    Attributes:
        initial_pool_size: ``m`` — ingredients in the starting pool
            (paper: 20).
        mutations: ``M`` — mutation attempts per copied recipe.
        initial_recipes: ``n`` — starting recipe pool size; ``None``
            derives the paper's ``n = m/φ`` (rounded, at least 1).
        duplicate_policy: What to do when the chosen replacement already
            occurs in the recipe: ``"skip"`` (default; recipes stay sets)
            or ``"allow"`` (paper is silent; kept for ablation — the
            duplicate is dropped at recipe-set construction either way,
            shrinking the recipe).
        category_fallback: CM-C behaviour when the pool holds no
            same-category candidate: ``"skip"`` the mutation (default) or
            fall back to ``"random"`` pool-wide choice.
        mixture_category_probability: CM-M's probability of using the
            category-restricted choice (paper: exactly half the time).
        engine: Simulation engine executing Algorithm 1:
            ``"vectorized"`` (default; array-backed state, batched RNG
            draws), ``"batched"`` (whole-ensemble run stacking;
            per-run results bit-identical to ``"vectorized"``) or
            ``"reference"`` (the scalar loop, kept as the executable
            spec).  All are deterministic per seed; the reference
            engine consumes the RNG stream in a different order from
            the other two, so its runs — and its run-cache keys —
            differ (DESIGN.md §5, §7).
    """

    initial_pool_size: int = PAPER.model_initial_pool_size
    mutations: int = PAPER.model_mutations_cm_r
    initial_recipes: int | None = None
    duplicate_policy: str = "skip"
    category_fallback: str = "skip"
    mixture_category_probability: float = 0.5
    engine: str = "vectorized"

    def __post_init__(self) -> None:
        if self.initial_pool_size < 1:
            raise ParameterError(
                f"initial_pool_size must be >= 1, got {self.initial_pool_size}"
            )
        if self.mutations < 0:
            raise ParameterError(f"mutations must be >= 0, got {self.mutations}")
        if self.initial_recipes is not None and self.initial_recipes < 1:
            raise ParameterError(
                f"initial_recipes must be >= 1, got {self.initial_recipes}"
            )
        if self.duplicate_policy not in ("skip", "allow"):
            raise ParameterError(
                f"duplicate_policy must be 'skip' or 'allow', got "
                f"{self.duplicate_policy!r}"
            )
        if self.category_fallback not in ("skip", "random"):
            raise ParameterError(
                f"category_fallback must be 'skip' or 'random', got "
                f"{self.category_fallback!r}"
            )
        if not 0.0 <= self.mixture_category_probability <= 1.0:
            raise ParameterError(
                "mixture_category_probability must be in [0, 1], got "
                f"{self.mixture_category_probability}"
            )
        if self.engine not in ENGINES:
            raise ParameterError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )

    def with_mutations(self, mutations: int) -> "ModelParams":
        """Copy with a different ``M``."""
        return replace(self, mutations=mutations)

    def with_engine(self, engine: str) -> "ModelParams":
        """Copy selecting a different simulation engine."""
        return replace(self, engine=engine)

    def derive_initial_recipes(self, phi: float) -> int:
        """The paper's ``n = m/φ`` (Sec. VI), unless overridden."""
        if self.initial_recipes is not None:
            return self.initial_recipes
        if phi <= 0:
            raise ParameterError(f"phi must be > 0, got {phi}")
        return max(1, int(round(self.initial_pool_size / phi)))


@dataclass(frozen=True)
class CuisineSpec:
    """The cuisine-side inputs of Algorithm 1.

    Attributes:
        region_code: Cuisine label (carried through to outputs).
        ingredient_ids: The cuisine's ingredient list ``I`` (sorted).
        categories: Category of each entry of ``ingredient_ids``.
        avg_recipe_size: ``s̄`` (rounded to int >= 1 at use).
        n_recipes: ``N`` — total recipes to evolve to.
        phi: ``φ`` — unique ingredients / recipes.
    """

    region_code: str
    ingredient_ids: tuple[int, ...]
    categories: tuple[Category, ...]
    avg_recipe_size: float
    n_recipes: int
    phi: float

    def __post_init__(self) -> None:
        if not self.ingredient_ids:
            raise ParameterError("cuisine spec has an empty ingredient list")
        if len(self.categories) != len(self.ingredient_ids):
            raise ParameterError(
                "categories must align with ingredient_ids: "
                f"{len(self.categories)} vs {len(self.ingredient_ids)}"
            )
        if self.avg_recipe_size < 1:
            raise ParameterError(
                f"avg_recipe_size must be >= 1, got {self.avg_recipe_size}"
            )
        if self.n_recipes < 1:
            raise ParameterError(f"n_recipes must be >= 1, got {self.n_recipes}")
        if self.phi <= 0:
            raise ParameterError(f"phi must be > 0, got {self.phi}")

    @property
    def recipe_size(self) -> int:
        """``s̄`` as the integer used when composing recipes."""
        return max(1, int(round(self.avg_recipe_size)))

    @property
    def n_ingredients(self) -> int:
        return len(self.ingredient_ids)

    @classmethod
    def from_view(cls, view: CuisineView, lexicon: Lexicon) -> "CuisineSpec":
        """Derive the spec of an empirical cuisine (the paper's inputs)."""
        universe = view.ingredient_universe()
        return cls(
            region_code=view.region_code,
            ingredient_ids=universe,
            categories=tuple(lexicon.category_of(i) for i in universe),
            avg_recipe_size=view.average_recipe_size(),
            n_recipes=view.n_recipes,
            phi=view.phi(),
        )

    def scaled(self, n_recipes: int) -> "CuisineSpec":
        """Copy targeting a different recipe count, keeping φ and s̄.

        Useful for quick experiments: evolve fewer recipes while keeping
        the cuisine's structural parameters.
        """
        if n_recipes < 1:
            raise ParameterError(f"n_recipes must be >= 1, got {n_recipes}")
        return replace(self, n_recipes=n_recipes)
