"""Culinary evolution models (Sec. V — the paper's core contribution)."""

from repro.models.base import (
    CopyMutateBase,
    CulinaryEvolutionModel,
    EvolutionRun,
)
from repro.models.batched import (
    BATCHED_KINDS,
    BATCHED_STREAM_VERSION,
    BatchedTransactions,
    run_batched,
)
from repro.models.copy_mutate import (
    CopyMutateCategory,
    CopyMutateMixture,
    CopyMutateRandom,
)
from repro.models.ensemble import (
    EnsembleResult,
    aggregate_ensemble,
    ensemble_curve,
    ensemble_curves,
    run_ensemble,
)
from repro.models.islands import (
    ISLANDS_STREAM_VERSION,
    IslandEnsembleResult,
    IslandMemberModel,
    IslandOutcome,
    IslandSimulation,
    MigrationEdge,
    MigrationTopology,
    island_seed_streams,
    run_island_ensemble,
)
from repro.models.fitness import (
    FitnessStrategy,
    RankBiasedFitness,
    ScoredFitness,
    UniformFitness,
)
from repro.models.null_model import NullModel
from repro.models.params import ENGINES, CuisineSpec, ModelParams
from repro.models.registry import (
    PAPER_MODELS,
    available_models,
    create_model,
    register_model,
)
from repro.models.state import (
    ArrayEvolutionState,
    EvolutionState,
    EvolutionTraceCounters,
)
from repro.models.statistics import EnsembleStatistics, summarize_ensemble
from repro.models.vectorized import (
    VECTORIZED_STREAM_VERSION,
    run_vectorized,
)

__all__ = [
    "ArrayEvolutionState",
    "BATCHED_KINDS",
    "BATCHED_STREAM_VERSION",
    "BatchedTransactions",
    "ENGINES",
    "ISLANDS_STREAM_VERSION",
    "IslandEnsembleResult",
    "IslandMemberModel",
    "IslandOutcome",
    "IslandSimulation",
    "MigrationEdge",
    "MigrationTopology",
    "island_seed_streams",
    "run_island_ensemble",
    "VECTORIZED_STREAM_VERSION",
    "run_batched",
    "run_vectorized",
    "CopyMutateBase",
    "CulinaryEvolutionModel",
    "EvolutionRun",
    "CopyMutateCategory",
    "CopyMutateMixture",
    "CopyMutateRandom",
    "EnsembleResult",
    "aggregate_ensemble",
    "ensemble_curve",
    "ensemble_curves",
    "run_ensemble",
    "FitnessStrategy",
    "RankBiasedFitness",
    "ScoredFitness",
    "UniformFitness",
    "NullModel",
    "CuisineSpec",
    "ModelParams",
    "PAPER_MODELS",
    "available_models",
    "create_model",
    "register_model",
    "EvolutionState",
    "EvolutionTraceCounters",
    "EnsembleStatistics",
    "summarize_ensemble",
]
