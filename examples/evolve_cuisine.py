"""Model comparison for one cuisine — a miniature of the paper's Fig. 4.

Generates a single cuisine's corpus, evolves it with all four Sec. V
models (CM-R, CM-C, CM-M, NM), and prints the Eq. 2 distance of each
aggregated model curve to the empirical rank-frequency distribution of
frequent ingredient combinations, plus an ASCII rendition of the curves.

Run:  python examples/evolve_cuisine.py [REGION_CODE]
"""

from __future__ import annotations

import sys

from repro import (
    CuisineSpec,
    PAPER_MODELS,
    WorldKitchen,
    combination_curve,
    create_model,
    run_ensemble,
    standard_lexicon,
)
from repro.analysis.model_eval import evaluate_models
from repro.viz.ascii import render_curves, render_table

SEED = 7
SCALE = 0.15
RUNS = 8


def main(region_code: str = "CBN") -> None:
    lexicon = standard_lexicon()
    kitchen = WorldKitchen(lexicon, seed=SEED)
    corpus = kitchen.generate_dataset(region_codes=(region_code,), scale=SCALE)
    view = corpus.cuisine(region_code)
    print(
        f"{region_code}: {view.n_recipes} recipes, "
        f"{view.n_ingredients} ingredients, phi={view.phi():.4f}, "
        f"avg size {view.average_recipe_size():.1f}"
    )

    empirical, mining = combination_curve(corpus, region_code, lexicon)
    print(f"frequent combinations at 5% support: {len(mining)}")

    model_curves = {}
    for name in PAPER_MODELS:
        ensemble = run_ensemble(
            create_model(name), CuisineSpec.from_view(view, lexicon),
            n_runs=RUNS, seed=SEED,
        )
        model_curves[name] = ensemble.ingredient_curve

    evaluation = evaluate_models(region_code, empirical, model_curves)
    print()
    print(render_table(
        ("Model", "Distance to empirical"),
        [(name, f"{value:.4f}") for name, value in evaluation.ranking()],
        title=f"Fig. 4 style comparison for {region_code} "
              f"(best: {evaluation.best_model})",
    ))

    curves = {"empirical": list(empirical.frequencies)}
    curves.update(
        {name: list(curve.frequencies) for name, curve in model_curves.items()}
    )
    print()
    print(render_curves(curves, title="rank-frequency (log-log)"))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "CBN")
