"""Quickstart: generate a corpus, inspect it, and run one model.

Walks the full public API surface in under a minute:

1. build the standard 721-entity lexicon;
2. generate a calibrated world corpus (3 cuisines, small scale);
3. resolve raw ingredient mentions through the aliasing protocol;
4. compute Table I-style statistics and overrepresentation;
5. evolve the cuisine with CM-R and compare against the empirical
   rank-frequency distribution (the paper's Fig. 4 measurement).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CuisineSpec,
    WorldKitchen,
    combination_curve,
    corpus_stats,
    create_model,
    curve_distance,
    run_ensemble,
    standard_lexicon,
    top_overrepresented,
)

SEED = 42


def main() -> None:
    # 1. The standardized ingredient dictionary (Sec. II).
    lexicon = standard_lexicon()
    print(f"lexicon: {lexicon!r}")

    # 2. A calibrated synthetic corpus for three cuisines.
    kitchen = WorldKitchen(lexicon, seed=SEED)
    corpus = kitchen.generate_dataset(
        region_codes=("ITA", "MEX", "JPN"), scale=0.1
    )
    stats = corpus_stats(corpus)
    print(
        f"corpus: {stats.n_recipes} recipes, "
        f"mean size {stats.mean_recipe_size:.1f}"
    )

    # 3. The aliasing protocol in action.
    for mention in (
        "2 cups finely chopped fresh cilantro leaves",
        "1 (14 oz) can coconut milk",
        "3 cloves garlic, minced",
    ):
        resolution = lexicon.resolve(mention)
        print(f"  {mention!r} -> {resolution.ingredient.name}")

    # 4. Culinary diversity (Sec. III): what makes each cuisine itself?
    for code in corpus.region_codes():
        top = top_overrepresented(corpus, code, lexicon, k=5)
        names = ", ".join(entry.name for entry in top)
        print(f"  {code} overrepresented: {names}")

    # 5. Culinary evolution (Secs. V-VI): does copy-mutation explain the
    #    combination statistics?
    view = corpus.cuisine("ITA")
    spec = CuisineSpec.from_view(view, lexicon)
    empirical, _ = combination_curve(corpus, "ITA", lexicon)
    for model_name in ("CM-R", "NM"):
        ensemble = run_ensemble(
            create_model(model_name), spec, n_runs=5, seed=SEED
        )
        distance = curve_distance(empirical, ensemble.ingredient_curve)
        print(f"  {model_name}: distance to empirical = {distance:.4f}")
    print("copy-mutate should be far closer than the null model.")


if __name__ == "__main__":
    main()
