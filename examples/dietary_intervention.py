"""Nutrition-guided recipe evolution — the paper's closing motivation.

The conclusion argues that "knowledge of the key determinants of culinary
evolution can drive the creation of novel recipe generation algorithms
aimed at dietary interventions for better nutrition and health."  This
example takes that seriously: it replaces the paper's Uniform(0, 1)
fitness with per-ingredient *health scores* from the nutrition substrate
and lets the copy-mutate machinery steer a cuisine toward healthier
ingredient use while keeping its statistical structure.

Run:  python examples/dietary_intervention.py
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro import (
    CuisineSpec,
    WorldKitchen,
    combination_curve,
    curve_distance,
    run_ensemble,
    standard_lexicon,
)
from repro.models.copy_mutate import CopyMutateCategory
from repro.nutrition import (
    build_nutrition_table,
    ingredient_health_scores,
    nutrition_fitness,
)
from repro.viz.ascii import render_table

SEED = 11
REGION = "USA"


def main() -> None:
    lexicon = standard_lexicon()
    table = build_nutrition_table(lexicon, seed=SEED)
    scores = ingredient_health_scores(lexicon, table)
    corpus = WorldKitchen(lexicon, seed=SEED).generate_dataset(
        region_codes=(REGION,), scale=0.1
    )
    view = corpus.cuisine(REGION)
    spec = CuisineSpec.from_view(view, lexicon)

    # CM-C keeps substitutions within-category ("swap one dairy for a
    # better dairy"), the gentlest realistic intervention.
    model = CopyMutateCategory(
        fitness=nutrition_fitness(lexicon, table, jitter=0.05)
    )
    ensemble = run_ensemble(model, spec, n_runs=6, seed=SEED)

    def category_mass(transactions) -> Counter:
        counts: Counter = Counter()
        for transaction in transactions:
            for ingredient_id in transaction:
                counts[lexicon.category_of(ingredient_id)] += 1
        total = sum(counts.values())
        return Counter({c: v / total for c, v in counts.items()})

    def mean_health(transactions) -> float:
        values = [
            scores[ingredient_id]
            for transaction in transactions
            for ingredient_id in transaction
        ]
        return float(np.mean(values))

    empirical_transactions = [r.ingredient_ids for r in view]
    evolved_transactions = [
        t for run in ensemble.runs for t in run.transactions
    ]
    empirical_mass = category_mass(empirical_transactions)
    evolved_mass = category_mass(evolved_transactions)

    rows = []
    for category in sorted(
        empirical_mass, key=lambda c: -empirical_mass[c]
    )[:10]:
        rows.append(
            (
                category.value,
                f"{empirical_mass[category]:.3f}",
                f"{evolved_mass.get(category, 0.0):.3f}",
            )
        )
    print(render_table(
        ("Category", "Share before", "Share after intervention"),
        rows,
        title=f"Nutrition-guided evolution of {REGION}",
    ))
    print()
    print(f"mean ingredient health before: {mean_health(empirical_transactions):.3f}")
    print(f"mean ingredient health after:  {mean_health(evolved_transactions):.3f}")

    # The structural fingerprint survives: the evolved pool still
    # reproduces a heavy-tailed combination curve close to the empirical
    # one (this is what makes it an *intervention*, not a replacement).
    empirical_curve, _ = combination_curve(corpus, REGION, lexicon)
    distance = curve_distance(empirical_curve, ensemble.ingredient_curve)
    print(f"distance to empirical combination curve: {distance:.4f}")


if __name__ == "__main__":
    main()
