"""Food-pairing analysis over the generated corpus (refs [3]-[6]).

The paper's intellectual backdrop is the food-pairing literature: do
cuisines prefer ingredient pairs that share flavor compounds?  Using the
FlavorDB stand-in profiles, this example scores two stylistically
opposite cuisines and builds the shared-compound flavor network.

Run:  python examples/flavor_pairing.py
"""

from __future__ import annotations

from repro import WorldKitchen, standard_lexicon
from repro.flavor import (
    build_flavor_network,
    build_flavor_profiles,
    food_pairing_bias,
    top_pairings,
)
from repro.viz.ascii import render_table

SEED = 5
REGIONS = ("FRA", "INSC")
SCALE = 0.05


def main() -> None:
    lexicon = standard_lexicon()
    profiles = build_flavor_profiles(lexicon, seed=SEED)
    corpus = WorldKitchen(lexicon, seed=SEED).generate_dataset(
        region_codes=REGIONS, scale=SCALE
    )

    rows = []
    for code in REGIONS:
        view = corpus.cuisine(code)
        recipes = [
            [lexicon.by_id(i).name for i in recipe.ingredient_ids]
            for recipe in view
        ]
        vocabulary = [lexicon.by_id(i).name for i in view.ingredient_universe()]
        result = food_pairing_bias(
            recipes, profiles, vocabulary=vocabulary,
            n_shuffles=10, seed=SEED,
        )
        rows.append(
            (
                code,
                f"{result.observed:.2f}",
                f"{result.randomized:.2f}",
                f"{result.bias:+.2f}",
            )
        )
    print(render_table(
        ("Region", "Observed N_s", "Randomized N_s", "Pairing bias"),
        rows,
        title="Food pairing: mean shared flavor compounds per recipe",
    ))

    # The flavor network backbone for a pantry of common ingredients.
    pantry = [
        "tomato", "basil", "garlic", "onion", "butter", "cream",
        "cumin", "cinnamon", "ginger", "chicken", "lemon", "olive oil",
    ]
    network = build_flavor_network(profiles, ingredients=pantry)
    print()
    print(render_table(
        ("Ingredient A", "Ingredient B", "Shared compounds"),
        top_pairings(network, k=8),
        title="Strongest pantry pairings (shared-compound network)",
    ))


if __name__ == "__main__":
    main()
