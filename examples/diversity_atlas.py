"""A culinary diversity atlas across all 25 world cuisines.

Reproduces the Sec. III analyses over the full region set: Table I-style
overrepresentation per cuisine, the Fig. 2 category-usage contrasts, and
the Fig. 3 cross-cuisine invariance measurement — all from one generated
world corpus.

Run:  python examples/diversity_atlas.py
"""

from __future__ import annotations

from repro import WorldKitchen, analyze_invariants, standard_lexicon
from repro.analysis.category_usage import category_usage_matrix
from repro.analysis.overrepresentation import overrepresentation_table
from repro.corpus.regions import get_region
from repro.lexicon.categories import Category
from repro.viz.ascii import render_table

SEED = 99
SCALE = 0.05


def main() -> None:
    lexicon = standard_lexicon()
    corpus = WorldKitchen(lexicon, seed=SEED).generate_dataset(scale=SCALE)

    # Overrepresentation atlas (Table I).
    table = overrepresentation_table(corpus, lexicon, k=5)
    rows = []
    for code in sorted(table):
        measured = ", ".join(entry.name for entry in table[code])
        published = ", ".join(get_region(code).overrepresented[:5])
        rows.append((code, measured, published))
    print(render_table(
        ("Region", "Measured top-5", "Published top-5 (Table I)"),
        rows,
        title="Overrepresentation atlas",
    ))

    # Category contrasts (Fig. 2 narrative).
    usage = category_usage_matrix(corpus, lexicon)
    spice = sorted(
        ((code, row[Category.SPICE]) for code, row in usage.items()),
        key=lambda item: -item[1],
    )
    dairy = sorted(
        ((code, row[Category.DAIRY]) for code, row in usage.items()),
        key=lambda item: -item[1],
    )
    print()
    print(render_table(
        ("Rank", "Spice-heavy", "per recipe", "Dairy-heavy", "per recipe"),
        [
            (i + 1, spice[i][0], f"{spice[i][1]:.2f}",
             dairy[i][0], f"{dairy[i][1]:.2f}")
            for i in range(5)
        ],
        title="Category leaders (Fig. 2 contrasts)",
    ))

    # Invariance (Fig. 3).
    analysis = analyze_invariants(corpus, lexicon)
    print()
    print(
        f"average pairwise curve distance across 25 cuisines: "
        f"{analysis.average_distance:.4f} (paper reports 0.035)"
    )
    distinct = analysis.distances.most_distinct(3)
    names = ", ".join(f"{code} ({value:.3f})" for code, value in distinct)
    print(f"most distinct cuisines: {names}")
    print("(the paper observes the low-count cuisines are most distinct)")


if __name__ == "__main__":
    main()
