"""The non-equilibrium nature of culinary evolution (Kinouchi et al. [7]).

The copy-mutate lineage frames cuisines as *non-equilibrium* systems:
the ingredient vocabulary never saturates but grows sub-linearly with
the recipe count (a Heaps-type law).  This example measures that growth
three ways and shows they agree:

1. the empirical (generated) cuisine's vocabulary growth curve;
2. an Algorithm 1 run's recorded (m, n) pool trajectory — the model's
   ∂-vs-φ alternation *enforces* proportional growth;
3. the same cuisine co-evolved on a full-mesh archipelago (DESIGN.md
   §10) — borrowing routes foreign mothers through the same pool
   accounting, so sub-linear growth survives migration.

The registered experiment ``repro experiment non_equilibrium`` runs the
cached, corpus-driven version of this comparison.

Run:  python examples/non_equilibrium.py
"""

from __future__ import annotations

import numpy as np

from repro import CuisineSpec, WorldKitchen, standard_lexicon
from repro.analysis.vocabulary_growth import (
    fit_heaps,
    growth_from_sets,
    vocabulary_growth_curve,
)
from repro.models.copy_mutate import CopyMutateRandom
from repro.models.islands import IslandSimulation, MigrationTopology
from repro.viz.ascii import render_curves, render_table

SEED = 29
REGION = "FRA"
NEIGHBOURS = ("ITA", "SP")
MIGRATION_RATE = 0.1  # per edge, on the full mesh


def main() -> None:
    lexicon = standard_lexicon()
    corpus = WorldKitchen(lexicon, seed=SEED).generate_dataset(
        region_codes=(REGION, *NEIGHBOURS), scale=0.2
    )
    view = corpus.cuisine(REGION)
    spec = CuisineSpec.from_view(view, lexicon)

    empirical_growth = vocabulary_growth_curve(view)
    empirical_fit = fit_heaps(empirical_growth)

    run = CopyMutateRandom().run(spec, seed=SEED, record_history=True)
    model_growth = growth_from_sets(run.transactions)
    model_fit = fit_heaps(model_growth)

    specs = [spec] + [
        CuisineSpec.from_view(corpus.cuisine(code), lexicon)
        for code in NEIGHBOURS
    ]
    mesh = MigrationTopology.full_mesh((REGION, *NEIGHBOURS), MIGRATION_RATE)
    outcome = IslandSimulation(CopyMutateRandom(), specs, mesh).run(seed=SEED)
    mesh_growth = growth_from_sets(outcome.runs[REGION].transactions)
    mesh_fit = fit_heaps(mesh_growth)

    trajectory = run.pool_trajectory()
    pool_sizes = np.array([m for m, _n in trajectory], dtype=float)
    recipe_counts = np.array([n for _m, n in trajectory], dtype=float)

    print(render_table(
        ("Curve", "Heaps beta", "R^2"),
        [
            ("empirical cuisine vocabulary", f"{empirical_fit.beta:.3f}",
             f"{empirical_fit.r_squared:.3f}"),
            ("evolved pool vocabulary", f"{model_fit.beta:.3f}",
             f"{model_fit.r_squared:.3f}"),
            (f"evolved with migration ({outcome.borrow_events[REGION]} "
             "borrows)", f"{mesh_fit.beta:.3f}",
             f"{mesh_fit.r_squared:.3f}"),
        ],
        title=f"Sub-linear vocabulary growth in {REGION} "
              "(beta < 1 = non-equilibrium growth)",
    ))

    print()
    print(
        f"Algorithm 1 pool ratio m/n: starts at "
        f"{pool_sizes[0] / max(recipe_counts[0], 1):.3f}, "
        f"ends at {pool_sizes[-1] / recipe_counts[-1]:.3f} "
        f"(cuisine phi = {spec.phi:.3f}) — the ∂-vs-φ rule locks the "
        "ingredient pool onto proportional growth."
    )

    # Downsample curves for the ASCII plot.
    step = max(1, len(empirical_growth) // 300)
    print()
    print(render_curves(
        {
            "empirical V(n)": list(
                empirical_growth[::step].astype(float)
                / empirical_growth[-1]
            ),
            "model V(n)": list(
                model_growth[::step].astype(float) / model_growth[-1]
            ),
        },
        title="vocabulary growth, normalized (log-log; straight line = power law)",
    ))


if __name__ == "__main__":
    main()
