"""Horizontal (cross-cuisine) culinary transmission — Sec. VII future work.

The paper closes by noting that cuisines did not evolve in isolation:
"the propagation of culinary habits would have been both vertical (time)
as well as horizontal (regions)."  This example co-evolves three
neighbouring cuisines with the HorizontalExchangeSimulation extension
and measures how borrowing rate affects cross-cuisine similarity.

Run:  python examples/horizontal_exchange.py
"""

from __future__ import annotations

from repro import CuisineSpec, WorldKitchen, standard_lexicon
from repro.analysis.itemsets import mine_frequent_itemsets
from repro.analysis.mae import curve_distance
from repro.analysis.rank_frequency import curve_from_mining
from repro.models.copy_mutate import CopyMutateRandom
from repro.models.extensions.horizontal import HorizontalExchangeSimulation
from repro.viz.ascii import render_table

SEED = 23
REGIONS = ("GRC", "ME", "SP")  # a Mediterranean neighbourhood
SCALE = 0.1


def pairwise_similarity(runs) -> float:
    """Mean pairwise curve distance between co-evolved cuisines."""
    curves = []
    for code, run in sorted(runs.items()):
        mining = mine_frequent_itemsets(run.transactions, min_support=0.05)
        curves.append(curve_from_mining(mining, code))
    total, pairs = 0.0, 0
    for i in range(len(curves)):
        for j in range(i + 1, len(curves)):
            total += curve_distance(curves[i], curves[j])
            pairs += 1
    return total / pairs


def main() -> None:
    lexicon = standard_lexicon()
    corpus = WorldKitchen(lexicon, seed=SEED).generate_dataset(
        region_codes=REGIONS, scale=SCALE
    )
    specs = [
        CuisineSpec.from_view(corpus.cuisine(code), lexicon)
        for code in REGIONS
    ]

    rows = []
    for exchange_rate in (0.0, 0.05, 0.2, 0.5):
        simulation = HorizontalExchangeSimulation(
            CopyMutateRandom(), exchange_rate=exchange_rate
        )
        outcome = simulation.run(specs, seed=SEED)
        borrowed = sum(outcome.borrow_events.values())
        rows.append(
            (
                f"{exchange_rate:.2f}",
                borrowed,
                f"{pairwise_similarity(outcome.runs):.4f}",
            )
        )
    print(render_table(
        ("Exchange rate", "Borrow events", "Mean pairwise curve distance"),
        rows,
        title=f"Horizontal transmission between {', '.join(REGIONS)} — "
              "more exchange should pull the curves together",
    ))


if __name__ == "__main__":
    main()
