"""Horizontal (cross-cuisine) culinary transmission — Sec. VII future work.

The paper closes by noting that cuisines did not evolve in isolation:
"the propagation of culinary habits would have been both vertical (time)
as well as horizontal (regions)."  This example co-evolves three
neighbouring cuisines on the island engine (DESIGN.md §10) and compares
migration topologies — isolated, ring, star, full mesh — at a shared
per-edge borrowing rate, measuring how each pulls the cuisines'
frequent-combination curves together.

The registered experiment ``repro experiment islands`` runs the
ensemble-averaged version of this comparison.

Run:  python examples/horizontal_exchange.py
"""

from __future__ import annotations

from repro import CuisineSpec, WorldKitchen, standard_lexicon
from repro.analysis.itemsets import mine_frequent_itemsets
from repro.analysis.mae import curve_distance
from repro.analysis.rank_frequency import curve_from_mining
from repro.models.copy_mutate import CopyMutateRandom
from repro.models.islands import IslandSimulation, MigrationTopology
from repro.viz.ascii import render_table

SEED = 23
REGIONS = ("GRC", "ME", "SP")  # a Mediterranean neighbourhood
SCALE = 0.1
EDGE_RATE = 0.1  # per-edge migration rate shared by all topologies


def pairwise_similarity(runs) -> float:
    """Mean pairwise curve distance between co-evolved cuisines."""
    curves = []
    for code, run in sorted(runs.items()):
        mining = mine_frequent_itemsets(run.transactions, min_support=0.05)
        curves.append(curve_from_mining(mining, code))
    total, pairs = 0.0, 0
    for i in range(len(curves)):
        for j in range(i + 1, len(curves)):
            total += curve_distance(curves[i], curves[j])
            pairs += 1
    return total / pairs


def main() -> None:
    lexicon = standard_lexicon()
    corpus = WorldKitchen(lexicon, seed=SEED).generate_dataset(
        region_codes=REGIONS, scale=SCALE
    )
    specs = [
        CuisineSpec.from_view(corpus.cuisine(code), lexicon)
        for code in REGIONS
    ]

    topologies = (
        ("isolated", MigrationTopology.isolated()),
        ("ring", MigrationTopology.ring(REGIONS, EDGE_RATE)),
        ("star", MigrationTopology.star(REGIONS[0], REGIONS[1:], EDGE_RATE)),
        ("mesh", MigrationTopology.full_mesh(REGIONS, EDGE_RATE)),
    )
    rows = []
    for name, topology in topologies:
        simulation = IslandSimulation(CopyMutateRandom(), specs, topology)
        outcome = simulation.run(seed=SEED)
        borrowed = sum(outcome.borrow_events.values())
        rows.append(
            (name, borrowed, f"{pairwise_similarity(outcome.runs):.4f}")
        )
    print(render_table(
        ("Topology", "Borrow events", "Mean pairwise curve distance"),
        rows,
        title=f"Horizontal transmission between {', '.join(REGIONS)} — "
              "denser migration should pull the curves together",
    ))


if __name__ == "__main__":
    main()
