"""Novel recipe generation under dietary constraints.

Combines three layers the paper motivates but does not build: the
nutrition substrate scores ingredients, nutrition-driven fitness steers
a copy-mutate run, and the RecipeGenerator turns the evolved pool into
*novel* recipes under user constraints (pescatarian, no additives, must
feature chickpea...).

Run:  python examples/recipe_generation.py
"""

from __future__ import annotations

from repro import CuisineSpec, WorldKitchen, standard_lexicon
from repro.generation import GenerationConstraints, RecipeGenerator
from repro.models.copy_mutate import CopyMutateCategory
from repro.nutrition import build_nutrition_table, health_score, nutrition_fitness
from repro.viz.ascii import render_table

SEED = 37
REGION = "ME"  # Middle East: legume-forward base cuisine


def main() -> None:
    lexicon = standard_lexicon()
    table = build_nutrition_table(lexicon, seed=SEED)
    corpus = WorldKitchen(lexicon, seed=SEED).generate_dataset(
        region_codes=(REGION,), scale=0.15
    )
    view = corpus.cuisine(REGION)

    # Evolve the cuisine with nutrition-driven fitness (CM-C keeps
    # substitutions within-category, the gentlest intervention).
    model = CopyMutateCategory(fitness=nutrition_fitness(lexicon, table))
    run = model.run(CuisineSpec.from_view(view, lexicon), seed=SEED)

    generator = RecipeGenerator(
        run, lexicon, reference=view.as_id_sets()
    )

    briefs = [
        ("weeknight, no constraints", GenerationConstraints()),
        (
            "pescatarian bowl",
            GenerationConstraints(
                exclude_categories=("Meat",),
                include=("chickpea",),
                min_size=5,
                max_size=9,
            ),
        ),
        (
            "alcohol-free mezze",
            GenerationConstraints(
                exclude_categories=("Beverage Alcoholic", "Bakery"),
                include=("tahini", "mint"),
                max_size=8,
            ),
        ),
    ]

    rows = []
    for label, constraints in briefs:
        recipe = generator.generate(constraints, seed=SEED)
        score = health_score(table.recipe_profile(recipe.ingredient_ids))
        rows.append(
            (label, ", ".join(recipe.names), f"{score:.2f}", recipe.edits)
        )
    print(render_table(
        ("Brief", "Generated recipe", "Health", "Edits"),
        rows,
        title=f"Novel {REGION} recipes from a nutrition-steered "
              "copy-mutate pool (all unseen in the corpus)",
    ))


if __name__ == "__main__":
    main()
